//! # snslp-jit
//!
//! Native x86-64 backend: executes committed SN-SLP IR as real SSE2
//! machine code instead of interpreting it, giving the bench harness a
//! wall-clock axis to calibrate the simulated cost model against.
//!
//! The backend is deliberately small and fully self-contained — a
//! hand-rolled assembler ([`asm`]), a slot-based lowering pass
//! ([`lower`]), raw `mmap`/`mprotect` executable memory ([`exec_mem`])
//! and a C-ABI runtime contract ([`runtime`]). There is no external
//! assembler, linker, or crates.io dependency.
//!
//! ## Fallback contract
//!
//! [`compile`] is all-or-nothing per function: either every instruction
//! lowers and the produced code is bit-compatible with the interpreter
//! (same traps, same fuel accounting, same float semantics), or the
//! function is rejected with [`JitError::Unsupported`] and the caller
//! runs the interpreter instead. There is no partial native execution.
//! The [`differential`] module checks that contract by running both
//! backends on identical inputs and comparing every observable
//! bit-exactly.
//!
//! ## Example
//!
//! ```
//! use snslp_cost::{CostModel, TargetDesc};
//! use snslp_interp::{run, ExecOptions, Memory, Value};
//! use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};
//!
//! // a[0] = a[0] + a[1]
//! let mut fb = FunctionBuilder::new("f", vec![Param::noalias_ptr("a")], Type::Void);
//! let a = fb.func().param(0);
//! let x = fb.load(ScalarType::F64, a);
//! let p = fb.ptradd_const(a, 8);
//! let y = fb.load(ScalarType::F64, p);
//! let s = fb.add(x, y);
//! fb.store(a, s);
//! fb.ret(None);
//! let f = fb.finish();
//!
//! let compiled = snslp_jit::compile(&f).expect("scalar f64 code lowers");
//! assert!(compiled.stats().code_bytes > 0);
//! // Native execution only on x86-64 Linux; lowering works everywhere.
//! if snslp_jit::native_supported() {
//!     let native = compiled.finalize().unwrap();
//!     let mut mem = Memory::new();
//!     let base = mem.alloc_slice_f64(&[1.0, 2.0]);
//!     native
//!         .invoke(&[Value::Ptr(base)], &mut mem, &ExecOptions::default())
//!         .unwrap();
//!     assert_eq!(mem.read_slice_f64(base, 1), vec![3.0]);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod differential;
pub mod exec_mem;
pub mod hot;
pub mod lower;
pub mod pcmap;
pub mod perf;
pub mod runtime;
pub mod sampler;

use std::fmt;
use std::str::FromStr;

use snslp_interp::{ExecError, ExecOptions, Memory, Trap, Value};
use snslp_ir::{Function, InstId, ScalarType, Type};
use snslp_trace::{add, bump, Counter, DecisionId, ReasonCode, Remark, Span};

use exec_mem::ExecMem;
use runtime::{status, JitCtx, RET_BUF_BYTES};

pub use differential::{check_backends, check_hotness, materialize_args, BackendDiff};
pub use hot::{HotMode, HotProfile, InstHot, StubHot};
pub use lower::{LowerError, LowerOptions};
pub use pcmap::{PcKind, PcMap, PcRange};

/// Which engine executes committed IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The reference interpreter (always available).
    #[default]
    Interp,
    /// The native x86-64 JIT, falling back per function to the
    /// interpreter on [`JitError::Unsupported`].
    Jit,
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" => Ok(Backend::Interp),
            "jit" => Ok(Backend::Jit),
            other => Err(format!(
                "unknown backend `{other}` (expected `interp` or `jit`)"
            )),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Interp => "interp",
            Backend::Jit => "jit",
        })
    }
}

/// Why native compilation or execution was declined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JitError {
    /// The function contains a construct the lowering pass does not
    /// handle. This is the *expected* per-function fallback path.
    Unsupported {
        /// Which construct, e.g. `unsupported cast fptosi`.
        reason: String,
    },
    /// The host cannot execute the emitted code (non-x86-64, non-Linux,
    /// or `mmap`/`mprotect` refused).
    Platform(String),
}

impl fmt::Display for JitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitError::Unsupported { reason } => write!(f, "unsupported by jit: {reason}"),
            JitError::Platform(reason) => write!(f, "native execution unavailable: {reason}"),
        }
    }
}

impl std::error::Error for JitError {}

/// Per-function code-size statistics from a successful compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitStats {
    /// Bytes of machine code emitted.
    pub code_bytes: usize,
    /// IR instructions lowered (excluding phis, which lower to edge
    /// moves on the jump sites).
    pub ops_lowered: usize,
}

/// Whether this host can execute JIT-compiled code natively.
///
/// Lowering ([`compile`]) works on every platform — only
/// [`CompiledFunction::finalize`] needs x86-64 Linux.
pub fn native_supported() -> bool {
    cfg!(all(target_arch = "x86_64", target_os = "linux"))
}

/// A remark explaining why `function` fell back to the interpreter.
/// Emitted by [`compile`] on the remarks facet; exposed so drivers can
/// also attach it to their own reports.
///
/// Instruction-anchored failures carry the first unsupported opcode and
/// its `InstId` in the site/inst/detail fields, so `NotCovered` causes
/// are greppable from the remark stream alone; pre-flight shape
/// rejections stay anchored to the entry block.
pub fn fallback_remark(function: &Function, err: &LowerError) -> Remark {
    let entry = &function.block(function.entry()).name;
    let (block, inst) = match err.inst {
        Some(i) => {
            let id = InstId(i);
            let block = function
                .block_ids()
                .find(|&b| function.block(b).insts().contains(&id))
                .map(|b| function.block(b).name.clone())
                .unwrap_or_else(|| entry.clone());
            (block, i)
        }
        None => (entry.clone(), 0),
    };
    Remark {
        pass: "jit".to_string(),
        function: format!("@{}", function.name()),
        block: block.clone(),
        site: format!("%{inst}"),
        inst,
        decision: DecisionId::new(function.name(), &block, 0, inst),
        seed_kind: "function".to_string(),
        width: 0,
        vectorized: false,
        reason: ReasonCode::JitFallback,
        cost: None,
        detail: err.to_string(),
    }
}

/// Lowers `f` to x86-64 SSE2 machine code.
///
/// Pure code generation: works on every host platform and never maps
/// executable memory (that is [`CompiledFunction::finalize`]). Bumps the
/// `jit_bytes_emitted` / `jit_ops_lowered` metrics on success and
/// `jit_fallbacks` (plus a [`ReasonCode::JitFallback`] remark) on
/// rejection.
///
/// # Errors
///
/// [`JitError::Unsupported`] when any instruction fails to lower; in
/// that case nothing was emitted and the caller should interpret.
pub fn compile(f: &Function) -> Result<CompiledFunction, JitError> {
    compile_with(f, &LowerOptions::default())
}

/// [`compile`] under explicit [`LowerOptions`]: hotness instrumentation
/// and decision labels for the PC→IR map.
///
/// # Errors
///
/// Same contract as [`compile`].
pub fn compile_with(f: &Function, opts: &LowerOptions) -> Result<CompiledFunction, JitError> {
    let span = Span::enter("jit.compile");
    span.note("function", f.name());
    match lower::lower_with(f, opts) {
        Ok(lowered) => {
            add(Counter::JitBytesEmitted, lowered.code.len() as u64);
            add(Counter::JitOpsLowered, lowered.ops_lowered as u64);
            span.note("bytes", lowered.code.len() as u64);
            span.note("ops", lowered.ops_lowered as u64);
            Ok(CompiledFunction {
                name: f.name().to_string(),
                param_tys: f.params().iter().map(|p| p.ty).collect(),
                ret_ty: f.ret_ty(),
                stats: JitStats {
                    code_bytes: lowered.code.len(),
                    ops_lowered: lowered.ops_lowered,
                },
                code: lowered.code,
                dump: lowered.dump,
                pc_map: lowered.pc_map,
                num_blocks: lowered.num_blocks,
                instrumented: lowered.instrumented,
            })
        }
        Err(err) => {
            bump(Counter::JitFallbacks);
            let reason = err.to_string();
            span.note("fallback", reason.as_str());
            fallback_remark(f, &err).emit();
            Err(JitError::Unsupported { reason })
        }
    }
}

/// Machine code for one function, not yet mapped executable.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    name: String,
    param_tys: Vec<Type>,
    ret_ty: Type,
    code: Vec<u8>,
    dump: String,
    stats: JitStats,
    pc_map: PcMap,
    num_blocks: usize,
    instrumented: bool,
}

impl CompiledFunction {
    /// Name of the source function.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw emitted machine code.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// Deterministic, byte-stable disassembly-style text dump of the
    /// lowering (no absolute addresses), suitable for golden tests.
    pub fn dump(&self) -> &str {
        &self.dump
    }

    /// Code-size statistics.
    pub fn stats(&self) -> JitStats {
        self.stats
    }

    /// The PC→IR map partitioning [`Self::code`] exactly.
    pub fn pc_map(&self) -> &PcMap {
        &self.pc_map
    }

    /// Number of basic blocks (and instrumented counter slots).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Whether the code was lowered with hotness instrumentation.
    pub fn instrumented(&self) -> bool {
        self.instrumented
    }

    /// Maps the code into executable memory.
    ///
    /// # Errors
    ///
    /// [`JitError::Platform`] off x86-64 Linux or when the kernel
    /// refuses the mapping.
    pub fn finalize(self) -> Result<JitFunction, JitError> {
        let mem = ExecMem::new(&self.code).map_err(|e| JitError::Platform(e.0))?;
        Ok(JitFunction {
            name: self.name,
            param_tys: self.param_tys,
            ret_ty: self.ret_ty,
            stats: self.stats,
            pc_map: self.pc_map,
            num_blocks: self.num_blocks,
            instrumented: self.instrumented,
            mem,
        })
    }
}

/// Result of one native invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeRun {
    /// The returned value, if the function returns one. Decoded from
    /// the runtime return buffer with the same byte layout the
    /// interpreter uses for memory, so bit patterns match exactly.
    pub ret: Option<Value>,
    /// Fuel left after execution; `opts.fuel - fuel_remaining` is the
    /// dynamic instruction count, matching the interpreter's
    /// `dyn_insts`.
    pub fuel_remaining: u64,
    /// Per-block execution counters from an instrumented activation
    /// (`None` when the function was not lowered with instrumentation).
    pub block_counts: Option<Vec<u64>>,
}

/// An executable, mapped function. Create via
/// [`CompiledFunction::finalize`].
#[derive(Debug)]
pub struct JitFunction {
    name: String,
    param_tys: Vec<Type>,
    ret_ty: Type,
    stats: JitStats,
    pc_map: PcMap,
    num_blocks: usize,
    instrumented: bool,
    mem: ExecMem,
}

impl JitFunction {
    /// Name of the source function.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Code-size statistics carried over from compilation.
    pub fn stats(&self) -> JitStats {
        self.stats
    }

    /// The PC→IR map carried over from compilation.
    pub fn pc_map(&self) -> &PcMap {
        &self.pc_map
    }

    /// Number of basic blocks (and instrumented counter slots).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Whether the code bumps per-block hotness counters.
    pub fn instrumented(&self) -> bool {
        self.instrumented
    }

    /// Host address of the first code byte — the base sampled RIPs and
    /// `perf` map entries are resolved against.
    pub fn code_base(&self) -> u64 {
        self.mem.entry() as u64
    }

    /// Mapped code size in bytes.
    pub fn code_len(&self) -> usize {
        self.stats.code_bytes
    }

    /// The mapped machine-code bytes — what the `perf` export records.
    pub fn code(&self) -> &[u8] {
        // The region is mapped readable+executable and lives as long as
        // `self.mem`; reading it back is safe.
        unsafe { std::slice::from_raw_parts(self.mem.entry(), self.stats.code_bytes) }
    }

    /// Packs `v` into the `u64` argument-array slot the prologue
    /// expects. 4-byte types occupy the low 32 bits (the prologue
    /// spills exactly the low 4 bytes for them).
    fn pack_arg(v: &Value) -> u64 {
        match v {
            Value::I32(x) => (i64::from(*x)) as u64,
            Value::I64(x) => *x as u64,
            Value::F32(x) => u64::from(x.to_bits()),
            Value::F64(x) => x.to_bits(),
            Value::Ptr(p) => *p,
            Value::Vector(_) => unreachable!("vector params rejected at compile time"),
        }
    }

    /// Executes the function natively against `mem`.
    ///
    /// Argument validation, trap kinds, and fuel accounting mirror
    /// [`snslp_interp::run`] exactly, so callers can swap backends
    /// without changing error handling.
    ///
    /// # Errors
    ///
    /// `BadArguments` on arity/type mismatch (same messages as the
    /// interpreter) and `Trap` for out-of-bounds accesses, division by
    /// zero, and fuel exhaustion.
    pub fn invoke(
        &self,
        args: &[Value],
        mem: &mut Memory,
        opts: &ExecOptions,
    ) -> Result<NativeRun, ExecError> {
        if args.len() != self.param_tys.len() {
            return Err(ExecError::BadArguments(format!(
                "expected {} arguments, got {}",
                self.param_tys.len(),
                args.len()
            )));
        }
        let mut packed = Vec::with_capacity(args.len());
        for (i, (v, want)) in args.iter().zip(&self.param_tys).enumerate() {
            let ok = match (want, v) {
                (Type::Ptr, Value::Ptr(_)) => true,
                (Type::Scalar(st), v) => v.scalar_type() == Some(*st),
                _ => false,
            };
            if !ok {
                return Err(ExecError::BadArguments(format!(
                    "argument {i} has wrong type for {want}"
                )));
            }
            packed.push(Self::pack_arg(v));
        }

        // Instrumented code bumps `hot_counts[block]` on every block
        // entry; give it one zeroed slot per block. The buffer outlives
        // the call and is returned with the run.
        let mut counters = if self.instrumented {
            vec![0u64; self.num_blocks]
        } else {
            Vec::new()
        };
        let bytes = mem.as_mut_slice();
        let mut ctx = JitCtx {
            mem_base: bytes.as_mut_ptr(),
            mem_size: bytes.len() as u64,
            fuel: opts.fuel,
            trap_addr: 0,
            ret: [0; RET_BUF_BYTES],
            hot_counts: if self.instrumented {
                counters.as_mut_ptr()
            } else {
                std::ptr::null_mut()
            },
        };
        // SAFETY: `entry` points at code emitted by `lower::lower` for a
        // function whose params match `param_tys` (validated above). The
        // code only dereferences `ctx`, the packed argument array,
        // `mem_base[0..mem_size)` after its own bounds checks, and (when
        // instrumented) the `num_blocks`-slot counter buffer; `bytes` and
        // `counters` stay borrowed for the whole call.
        let status = unsafe {
            let entry: extern "C" fn(*mut JitCtx, *const u64) -> i64 =
                std::mem::transmute(self.mem.entry());
            entry(&mut ctx, packed.as_ptr())
        };
        match status {
            status::OK => Ok(NativeRun {
                ret: self.decode_ret(&ctx.ret),
                fuel_remaining: ctx.fuel,
                block_counts: self.instrumented.then_some(counters),
            }),
            status::OOB => Err(Trap::OutOfBounds(ctx.trap_addr).into()),
            status::DIV_ZERO => Err(Trap::DivisionByZero.into()),
            status::FUEL => Err(Trap::FuelExhausted.into()),
            other => Err(ExecError::BadArguments(format!(
                "jit returned unknown status {other}"
            ))),
        }
    }

    /// Decodes the return buffer into a [`Value`] per the declared
    /// return type. Lane layout matches guest memory (packed,
    /// little-endian), which is exactly how `Ret` stored it.
    fn decode_ret(&self, buf: &[u8; RET_BUF_BYTES]) -> Option<Value> {
        fn scalar(st: ScalarType, b: &[u8]) -> Value {
            match st {
                ScalarType::I32 => Value::I32(i32::from_le_bytes(b[..4].try_into().unwrap())),
                ScalarType::I64 => Value::I64(i64::from_le_bytes(b[..8].try_into().unwrap())),
                ScalarType::F32 => Value::F32(f32::from_le_bytes(b[..4].try_into().unwrap())),
                ScalarType::F64 => Value::F64(f64::from_le_bytes(b[..8].try_into().unwrap())),
            }
        }
        match self.ret_ty {
            Type::Void => None,
            Type::Scalar(st) => Some(scalar(st, buf)),
            Type::Ptr => Some(Value::Ptr(u64::from_le_bytes(buf[..8].try_into().unwrap()))),
            Type::Vector(vt) => {
                let step = vt.elem.size_bytes() as usize;
                Some(Value::Vector(
                    (0..vt.lanes as usize)
                        .map(|i| scalar(vt.elem, &buf[i * step..]))
                        .collect(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::{CostModel, TargetDesc};
    use snslp_interp::ArgSpec;
    use snslp_ir::{
        BinOp, CastKind, CmpPred, FunctionBuilder, Param, ScalarType, Type, UnOp, VectorType,
    };

    fn model() -> CostModel {
        CostModel::new(TargetDesc::sse2_like())
    }

    fn assert_agree(f: &snslp_ir::Function, args: &[ArgSpec]) {
        let opts = ExecOptions::default();
        match check_backends(f, args, &model(), &opts) {
            Ok(BackendDiff::Agreed) => {}
            Ok(BackendDiff::NotCovered { reason }) => {
                if native_supported() {
                    panic!("`{}` unexpectedly not covered: {reason}", f.name());
                }
            }
            Err(div) => panic!("`{}` diverged: {div}", f.name()),
        }
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("interp".parse::<Backend>().unwrap(), Backend::Interp);
        assert_eq!("jit".parse::<Backend>().unwrap(), Backend::Jit);
        assert!("sse".parse::<Backend>().is_err());
        assert_eq!(Backend::Jit.to_string(), "jit");
        assert_eq!(Backend::default(), Backend::Interp);
    }

    #[test]
    fn compile_produces_code_and_dump_portably() {
        let mut fb = FunctionBuilder::new("axpy1", vec![Param::noalias_ptr("a")], Type::Void);
        let a = fb.func().param(0);
        let x = fb.load(ScalarType::F64, a);
        let y = fb.mul(x, x);
        fb.store(a, y);
        fb.ret(None);
        let f = fb.finish();

        let c = compile(&f).expect("lowers");
        assert!(c.stats().code_bytes > 0);
        assert!(c.stats().ops_lowered >= 4);
        assert_eq!(c.code().len(), c.stats().code_bytes);
        assert!(c.dump().starts_with("jit `axpy1` isa=sse2"));
        assert!(c.dump().ends_with(&format!(
            "end: code={}B ops={}\n",
            c.stats().code_bytes,
            c.stats().ops_lowered
        )));
    }

    #[test]
    fn compile_bumps_metrics_and_fallback_emits_remark() {
        use snslp_trace::MetricsSnapshot;

        let mut fb = FunctionBuilder::new("m", vec![Param::noalias_ptr("a")], Type::Void);
        let a = fb.func().param(0);
        let x = fb.load(ScalarType::F64, a);
        fb.store(a, x);
        fb.ret(None);
        let f = fb.finish();

        let before = MetricsSnapshot::current();
        compile(&f).expect("lowers");
        let delta = MetricsSnapshot::current().delta_since(&before);
        assert!(delta.get(Counter::JitBytesEmitted) > 0);
        assert!(delta.get(Counter::JitOpsLowered) >= 3);
        assert_eq!(delta.get(Counter::JitFallbacks), 0);

        // fptosi is deliberately unsupported: it must fall back, bump the
        // counter, and emit a `jit-fallback` remark on the remarks facet.
        let mut fb = FunctionBuilder::new(
            "fb",
            vec![Param::new("x", Type::scalar(ScalarType::F64))],
            Type::scalar(ScalarType::I64),
        );
        let x = fb.func().param(0);
        let i = fb.cast(CastKind::Fptosi, ScalarType::I64, x);
        fb.ret(Some(i));
        let f = fb.finish();

        let before = MetricsSnapshot::current();
        let lines = snslp_trace::capture(snslp_trace::Facet::Remarks as u32, || {
            let err = compile(&f).unwrap_err();
            assert!(matches!(err, JitError::Unsupported { .. }));
        });
        let delta = MetricsSnapshot::current().delta_since(&before);
        assert_eq!(delta.get(Counter::JitFallbacks), 1);
        assert!(
            lines.iter().any(|l| l.contains("reason=jit-fallback")),
            "no fallback remark in {lines:?}"
        );
    }

    #[test]
    fn invoke_validates_arguments_like_the_interpreter() {
        if !native_supported() {
            return;
        }
        let mut fb = FunctionBuilder::new(
            "want_i64",
            vec![Param::new("n", Type::scalar(ScalarType::I64))],
            Type::scalar(ScalarType::I64),
        );
        let n = fb.func().param(0);
        fb.ret(Some(n));
        let f = fb.finish();
        let native = compile(&f).unwrap().finalize().unwrap();
        let mut mem = Memory::new();
        let opts = ExecOptions::default();

        let err = native.invoke(&[], &mut mem, &opts).unwrap_err();
        assert!(matches!(err, ExecError::BadArguments(ref m) if m.contains("expected 1")));
        let err = native
            .invoke(&[Value::F64(1.0)], &mut mem, &opts)
            .unwrap_err();
        assert!(matches!(err, ExecError::BadArguments(ref m) if m.contains("argument 0")));
        let run = native.invoke(&[Value::I64(-5)], &mut mem, &opts).unwrap();
        assert_eq!(run.ret, Some(Value::I64(-5)));
    }

    #[test]
    fn scalar_int_arithmetic_matches_interpreter() {
        // One store per op keeps every intermediate observable in memory.
        let ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::Min,
            BinOp::Max,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
        ];
        for st in [ScalarType::I32, ScalarType::I64] {
            let mut fb = FunctionBuilder::new(
                "intops",
                vec![Param::noalias_ptr("a"), Param::noalias_ptr("out")],
                Type::Void,
            );
            let a = fb.func().param(0);
            let out = fb.func().param(1);
            let sz = i64::from(st.size_bytes());
            let x = fb.load(st, a);
            let p1 = fb.ptradd_const(a, sz);
            let y = fb.load(st, p1);
            for (i, op) in ops.iter().enumerate() {
                let r = fb.binary(*op, x, y);
                let q = fb.ptradd_const(out, sz * i as i64);
                fb.store(q, r);
            }
            fb.ret(None);
            let f = fb.finish();
            let pairs: [(i64, i64); 6] = [
                (7, 3),
                (-7, 3),
                (-1, 64),
                (i64::from(i32::MIN), -1),
                (i64::MIN, -1),
                (0, -9),
            ];
            for (x, y) in pairs {
                let args = match st {
                    ScalarType::I32 => vec![
                        ArgSpec::I32Array(vec![x as i32, y as i32]),
                        ArgSpec::I32Array(vec![0; ops.len()]),
                    ],
                    _ => vec![
                        ArgSpec::I64Array(vec![x, y]),
                        ArgSpec::I64Array(vec![0; ops.len()]),
                    ],
                };
                assert_agree(&f, &args);
            }
        }
    }

    #[test]
    fn division_by_zero_traps_identically() {
        let mut fb = FunctionBuilder::new(
            "divz",
            vec![
                Param::new("x", Type::scalar(ScalarType::I64)),
                Param::new("y", Type::scalar(ScalarType::I64)),
            ],
            Type::scalar(ScalarType::I64),
        );
        let x = fb.func().param(0);
        let y = fb.func().param(1);
        let d = fb.binary(BinOp::Div, x, y);
        fb.ret(Some(d));
        let f = fb.finish();
        assert_agree(&f, &[ArgSpec::I64(10), ArgSpec::I64(0)]);
        assert_agree(&f, &[ArgSpec::I64(i64::MIN), ArgSpec::I64(-1)]);
        assert_agree(&f, &[ArgSpec::I64(10), ArgSpec::I64(3)]);
    }

    #[test]
    fn scalar_float_ops_match_bit_exactly() {
        for st in [ScalarType::F32, ScalarType::F64] {
            let mut fb = FunctionBuilder::new(
                "fops",
                vec![Param::noalias_ptr("a"), Param::noalias_ptr("out")],
                Type::Void,
            );
            let a = fb.func().param(0);
            let out = fb.func().param(1);
            let sz = i64::from(st.size_bytes());
            let x = fb.load(st, a);
            let p1 = fb.ptradd_const(a, sz);
            let y = fb.load(st, p1);
            let ops = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Min,
                BinOp::Max,
                BinOp::Rem,
            ];
            for (i, op) in ops.iter().enumerate() {
                let r = fb.binary(*op, x, y);
                let q = fb.ptradd_const(out, sz * i as i64);
                fb.store(q, r);
            }
            let neg = fb.unary(UnOp::Neg, x);
            let abs = fb.unary(UnOp::Abs, y);
            let sqrt = fb.unary(UnOp::Sqrt, x);
            for (i, v) in [neg, abs, sqrt].into_iter().enumerate() {
                let q = fb.ptradd_const(out, sz * (ops.len() + i) as i64);
                fb.store(q, v);
            }
            fb.ret(None);
            let f = fb.finish();
            let cases: [(f64, f64); 6] = [
                (1.5, -2.25),
                (0.0, -0.0),
                (f64::NAN, 1.0),
                (1.0, f64::NAN),
                (f64::INFINITY, -3.0),
                (-4.0, 0.0),
            ];
            for (x, y) in cases {
                let args = match st {
                    ScalarType::F32 => vec![
                        ArgSpec::F32Array(vec![x as f32, y as f32]),
                        ArgSpec::F32Array(vec![0.0; 10]),
                    ],
                    _ => vec![
                        ArgSpec::F64Array(vec![x, y]),
                        ArgSpec::F64Array(vec![0.0; 10]),
                    ],
                };
                assert_agree(&f, &args);
            }
        }
    }

    #[test]
    fn comparisons_and_select_match() {
        for st in [ScalarType::I64, ScalarType::F64] {
            let mut fb = FunctionBuilder::new(
                "cmps",
                vec![Param::noalias_ptr("a"), Param::noalias_ptr("out")],
                Type::Void,
            );
            let a = fb.func().param(0);
            let out = fb.func().param(1);
            let x = fb.load(st, a);
            let p1 = fb.ptradd_const(a, 8);
            let y = fb.load(st, p1);
            let preds = [
                CmpPred::Eq,
                CmpPred::Ne,
                CmpPred::Lt,
                CmpPred::Le,
                CmpPred::Gt,
                CmpPred::Ge,
            ];
            for (i, pred) in preds.iter().enumerate() {
                let c = fb.cmp(*pred, x, y);
                let sel = fb.select(c, x, y);
                let q = fb.ptradd_const(out, 4 * i as i64);
                fb.store(q, c);
                let q2 = fb.ptradd_const(out, 32 + 8 * i as i64);
                fb.store(q2, sel);
            }
            fb.ret(None);
            let f = fb.finish();
            let cases: [(f64, f64); 4] = [(1.0, 2.0), (2.0, 2.0), (f64::NAN, 2.0), (-1.0, -7.0)];
            for (x, y) in cases {
                let args = match st {
                    ScalarType::I64 => vec![
                        ArgSpec::I64Array(vec![x as i64, y as i64]),
                        ArgSpec::I64Array(vec![0; 16]),
                    ],
                    _ => vec![
                        ArgSpec::F64Array(vec![x, y]),
                        ArgSpec::F64Array(vec![0.0; 16]),
                    ],
                };
                assert_agree(&f, &args);
            }
        }
    }

    #[test]
    fn casts_match_including_double_rounding() {
        let mut fb = FunctionBuilder::new(
            "casts",
            vec![Param::noalias_ptr("n"), Param::noalias_ptr("out")],
            Type::Void,
        );
        let np = fb.func().param(0);
        let out = fb.func().param(1);
        let n = fb.load(ScalarType::I64, np);
        let d = fb.cast(CastKind::Sitofp, ScalarType::F64, n);
        let s = fb.cast(CastKind::Sitofp, ScalarType::F32, n);
        let w = fb.cast(CastKind::Fpext, ScalarType::F64, s);
        let t = fb.cast(CastKind::Fptrunc, ScalarType::F32, d);
        let n32 = fb.cast(CastKind::Trunc, ScalarType::I32, n);
        let n64 = fb.cast(CastKind::Sext, ScalarType::I64, n32);
        fb.store(out, d);
        let q = fb.ptradd_const(out, 8);
        fb.store(q, w);
        let q = fb.ptradd_const(out, 16);
        fb.store(q, t);
        let q = fb.ptradd_const(out, 24);
        fb.store(q, n64);
        fb.ret(None);
        let f = fb.finish();
        // 1<<53 + 1 and (1<<24)+1 exercise rounding in both widths.
        for n in [0, -1, 42, (1 << 53) + 1, (1 << 24) + 1, i64::MIN] {
            assert_agree(
                &f,
                &[ArgSpec::I64Array(vec![n]), ArgSpec::F64Array(vec![0.0; 4])],
            );
        }
    }

    #[test]
    fn loops_phis_and_fuel_match() {
        // out[0] += a[i] over n elements, returning the total: exercises
        // phis, branches, and fuel accounting.
        let mut fb = FunctionBuilder::new(
            "sum",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("out"),
                Param::new("n", Type::scalar(ScalarType::I64)),
            ],
            Type::scalar(ScalarType::F64),
        );
        let a = fb.func().param(0);
        let out = fb.func().param(1);
        let n = fb.func().param(2);
        fb.counted_loop(n, |fb, i| {
            let eight = fb.const_i64(8);
            let off = fb.mul(i, eight);
            let p = fb.ptradd(a, off);
            let x = fb.load(ScalarType::F64, p);
            let acc = fb.load(ScalarType::F64, out);
            let s = fb.add(acc, x);
            fb.store(out, s);
        });
        let total = fb.load(ScalarType::F64, out);
        fb.ret(Some(total));
        let f = fb.finish();

        let data: Vec<f64> = (0..37).map(|i| f64::from(i) * 0.5 - 3.0).collect();
        let args = |d: Vec<f64>| {
            vec![
                ArgSpec::F64Array(d),
                ArgSpec::F64Array(vec![0.0]),
                ArgSpec::I64(37),
            ]
        };
        assert_agree(&f, &args(data.clone()));

        // Tight fuel: both backends must trap FuelExhausted at the same
        // instruction, leaving identical memory.
        let opts = ExecOptions { fuel: 25 };
        match check_backends(&f, &args(data), &model(), &opts) {
            Ok(BackendDiff::Agreed) => {}
            Ok(BackendDiff::NotCovered { reason }) => {
                assert!(!native_supported(), "not covered: {reason}");
            }
            Err(div) => panic!("fuel divergence: {div}"),
        }
    }

    #[test]
    fn out_of_bounds_traps_identically() {
        let mut fb = FunctionBuilder::new(
            "oob",
            vec![
                Param::noalias_ptr("a"),
                Param::new("i", Type::scalar(ScalarType::I64)),
            ],
            Type::scalar(ScalarType::F64),
        );
        let a = fb.func().param(0);
        let i = fb.func().param(1);
        let eight = fb.const_i64(8);
        let off = fb.mul(i, eight);
        let p = fb.ptradd(a, off);
        let x = fb.load(ScalarType::F64, p);
        fb.ret(Some(x));
        let f = fb.finish();
        for i in [0i64, 3, 4, 1 << 40, -1] {
            assert_agree(&f, &[ArgSpec::F64Array(vec![1.0; 4]), ArgSpec::I64(i)]);
        }
    }

    #[test]
    fn vector_ops_match_including_packed_path() {
        // b[0..2] = a[0..2] * a[2..4] + splat(k), then a shuffled copy —
        // covers the packed SSE path, splat, buildvector, shuffle,
        // extract/insert.
        let mut fb = FunctionBuilder::new(
            "vec",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::new("k", Type::scalar(ScalarType::F64)),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let k = fb.func().param(2);
        let vt = VectorType {
            elem: ScalarType::F64,
            lanes: 2,
        };
        let lo = fb.load_vector(vt, a);
        let p2 = fb.ptradd_const(a, 16);
        let hi = fb.load_vector(vt, p2);
        let prod = fb.mul(lo, hi);
        let ks = fb.splat(k, 2);
        let sum = fb.add(prod, ks);
        fb.store(b, sum);
        let shuf = fb.shuffle(lo, hi, vec![3, 0]);
        let e0 = fb.extract(prod, 1);
        let e1 = fb.extract(sum, 0);
        let bv = fb.build_vector(vec![e0, e1]);
        let ins = fb.insert(shuf, e0, 0);
        let q = fb.ptradd_const(b, 16);
        fb.store(q, ins);
        let q2 = fb.ptradd_const(b, 32);
        fb.store(q2, bv);
        fb.ret(None);
        let f = fb.finish();
        assert_agree(
            &f,
            &[
                ArgSpec::F64Array(vec![1.5, -2.0, 3.0, 0.25]),
                ArgSpec::F64Array(vec![0.0; 6]),
                ArgSpec::F64(10.0),
            ],
        );
    }

    #[test]
    fn lanewise_super_node_ops_match() {
        // BinaryLanewise with mixed add/sub is exactly what SN-SLP commits
        // for operator/inverse sequences.
        let mut fb = FunctionBuilder::new(
            "sn",
            vec![Param::noalias_ptr("a"), Param::noalias_ptr("b")],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let vt = VectorType {
            elem: ScalarType::F64,
            lanes: 2,
        };
        let x = fb.load_vector(vt, a);
        let p2 = fb.ptradd_const(a, 16);
        let y = fb.load_vector(vt, p2);
        let mixed = fb.binary_lanewise(vec![BinOp::Add, BinOp::Sub], x, y);
        fb.store(b, mixed);
        fb.ret(None);
        let f = fb.finish();
        assert_agree(
            &f,
            &[
                ArgSpec::F64Array(vec![1.0, 2.0, 0.5, 0.25]),
                ArgSpec::F64Array(vec![0.0; 2]),
            ],
        );
    }

    #[test]
    fn fptosi_reports_unsupported() {
        let mut fb = FunctionBuilder::new(
            "trunc",
            vec![Param::new("x", Type::scalar(ScalarType::F64))],
            Type::scalar(ScalarType::I64),
        );
        let x = fb.func().param(0);
        let i = fb.cast(CastKind::Fptosi, ScalarType::I64, x);
        fb.ret(Some(i));
        let f = fb.finish();
        match compile(&f) {
            Err(JitError::Unsupported { reason }) => {
                assert!(reason.contains("fptosi"), "reason: {reason}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // The differential checker treats this as NotCovered, not a
        // divergence.
        let diff = check_backends(&f, &[ArgSpec::F64(1.5)], &model(), &ExecOptions::default());
        assert!(matches!(diff, Ok(BackendDiff::NotCovered { .. })));
    }
}
