//! Lowering committed IR to x86-64 machine code.
//!
//! The register allocation scheme is deliberately the simplest one that
//! is correct: *fixed-scratch + stack-slot*. Every SSA value gets one
//! fixed-size stack slot addressed `[rsp + id * slot_bytes]`; every
//! instruction loads its operands from slots into the scratch registers
//! (`rax`/`rcx`/`rdx`, `xmm0`/`xmm1`), computes, and stores the result
//! back. Four registers are pinned for the whole activation: `r12` =
//! guest memory base, `r13` = guest memory size, `r14` = fuel, `r15` =
//! context pointer. No values live across instruction boundaries in
//! registers, so helper calls and trap exits need no spill logic.
//!
//! Slot layout equals the guest memory layout of each type (`i32`/`f32`
//! 4 bytes, `i64`/`f64`/`ptr` 8 bytes, vectors packed lanes), which turns
//! loads and stores into bounds-checked byte copies and makes
//! extract/insert/shuffle plain slot arithmetic. Integer reads go through
//! `movsxd` for `i32`, mirroring the interpreter's widen-to-`i64`,
//! compute, truncate semantics (including shift counts masked `& 63`).
//!
//! The fallback contract: [`lower`] either emits code for *every*
//! instruction of the function or returns a reason string and emits
//! nothing — there is no partial compilation. `fptosi` (saturating,
//! per Rust `as` semantics) is intentionally not lowered and exercises
//! that path.
//!
//! Phi moves happen on the edge, as in the interpreter: each phi owns a
//! staging slot; a terminator first copies every incoming value to the
//! staging slots, then commits staging to the phi slots, so parallel
//! copies can never observe each other's writes.

use std::collections::BTreeMap;

use snslp_interp::classify;
use snslp_ir::{
    BinOp, BlockId, CastKind, CmpPred, Constant, Function, InstId, InstKind, ScalarType, Type, UnOp,
};
use snslp_trace::DecisionId;

use crate::asm::{
    Asm, Cc, Gpr, Label, Xmm, R12, R13, R14, R15, RAX, RBP, RCX, RDI, RDX, RSI, RSP, XMM0, XMM1,
    XMM2, XMM3, XMM4, XMM5, XMM7,
};
use crate::pcmap::{PcKind, PcMap};
use crate::runtime::{
    helpers, CTX_FUEL, CTX_HOT, CTX_MEM_BASE, CTX_MEM_SIZE, CTX_RET, CTX_TRAP_ADDR,
};

/// Guest address 0..64 is the interpreter's null page.
const NULL_PAGE: i8 = 64;

/// Refuse values wider than the context's return buffer.
const MAX_VALUE_BYTES: usize = crate::runtime::RET_BUF_BYTES;

/// Refuse frames past 1 MiB: test threads run on 2 MiB stacks.
const MAX_FRAME_BYTES: usize = 1 << 20;

/// Options controlling one lowering.
#[derive(Debug, Clone, Default)]
pub struct LowerOptions {
    /// Emit the instrumented-hotness counter bump at every block entry:
    /// `inc qword [hot_counts + 8*block_index]` through the context's
    /// `hot_counts` pointer. Callers must then provide a counter buffer
    /// with one slot per block at invoke time.
    pub instrument: bool,
    /// Instruction arena index → the vectorization decision that emitted
    /// it, for decision-labelled PC ranges.
    pub decisions: BTreeMap<u32, DecisionId>,
}

/// A structured fallback reason: why a function cannot be lowered, and —
/// when the failure is anchored to one instruction — which one, so a
/// `jit-fallback` remark is greppable down to the offending opcode.
#[derive(Debug, Clone)]
pub struct LowerError {
    /// Human-readable reason.
    pub reason: String,
    /// Arena index of the first unsupported instruction, when the
    /// failure is instruction-anchored (pre-flight shape checks are
    /// function-level and leave this empty).
    pub inst: Option<u32>,
    /// Mnemonic of the unsupported opcode (`cast.fptosi`, `binary.div`,
    /// …), present exactly when `inst` is.
    pub opcode: Option<String>,
}

impl LowerError {
    fn function(reason: String) -> Self {
        LowerError {
            reason,
            inst: None,
            opcode: None,
        }
    }

    fn at(id: InstId, kind: &InstKind, reason: String) -> Self {
        LowerError {
            reason,
            inst: Some(id.index() as u32),
            opcode: Some(mnemonic(kind)),
        }
    }
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.opcode, self.inst) {
            (Some(op), Some(i)) => write!(f, "unsupported `{op}` at %{i}: {}", self.reason),
            _ => write!(f, "{}", self.reason),
        }
    }
}

/// Short opcode mnemonic for fallback remarks and dump lines.
fn mnemonic(kind: &InstKind) -> String {
    match kind {
        InstKind::Param(_) => "param".to_string(),
        InstKind::Phi { .. } => "phi".to_string(),
        InstKind::Const(_) => "const".to_string(),
        InstKind::Binary { op, .. } => format!("binary.{op}"),
        InstKind::BinaryLanewise { ops, .. } => format!("lanewise[{}]", ops.len()),
        InstKind::Unary { op, .. } => format!("unary.{op}"),
        InstKind::Cast { kind, .. } => format!("cast.{kind}"),
        InstKind::Cmp { pred, .. } => format!("cmp.{pred}"),
        InstKind::Select { .. } => "select".to_string(),
        InstKind::Load { .. } => "load".to_string(),
        InstKind::Store { .. } => "store".to_string(),
        InstKind::PtrAdd { .. } => "ptradd".to_string(),
        InstKind::Splat { .. } => "splat".to_string(),
        InstKind::BuildVector { .. } => "build-vector".to_string(),
        InstKind::ExtractElement { .. } => "extract".to_string(),
        InstKind::InsertElement { .. } => "insert".to_string(),
        InstKind::Shuffle { .. } => "shuffle".to_string(),
        InstKind::Jump { .. } => "jump".to_string(),
        InstKind::Branch { .. } => "branch".to_string(),
        InstKind::Ret { .. } => "ret".to_string(),
    }
}

/// Successful lowering: finalized code plus the jitdump text.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// Position-independent machine code (entry at byte 0).
    pub code: Vec<u8>,
    /// Deterministic disassembly-style dump (no absolute addresses).
    pub dump: String,
    /// Number of IR instructions lowered (phis excluded).
    pub ops_lowered: usize,
    /// PC→IR map partitioning `code` exactly.
    pub pc_map: PcMap,
    /// Number of basic blocks (the instrumented counter buffer needs one
    /// `u64` slot per block).
    pub num_blocks: usize,
    /// Whether the code bumps per-block hotness counters.
    pub instrumented: bool,
}

struct Lower<'a> {
    f: &'a Function,
    a: Asm,
    slot_bytes: usize,
    /// phi inst -> staging slot index (>= num_inst_slots).
    staging: Vec<(InstId, usize)>,
    block_labels: Vec<Label>,
    l_epilogue: Label,
    l_trap_oob: Label,
    l_trap_div: Label,
    l_trap_fuel: Label,
    frame: i32,
    dump: String,
    ops: usize,
    opts: &'a LowerOptions,
    pc: PcMap,
}

/// Lowers `f` to machine code with default options, or reports why the
/// function must fall back to the interpreter.
///
/// # Errors
///
/// Returns the fallback reason (unsupported opcode, oversized value or
/// frame, malformed shape). Nothing is emitted on error.
pub fn lower(f: &Function) -> Result<Lowered, LowerError> {
    lower_with(f, &LowerOptions::default())
}

/// Lowers `f` to machine code under explicit [`LowerOptions`].
///
/// # Errors
///
/// Returns the structured fallback reason. Nothing is emitted on error.
pub fn lower_with(f: &Function, opts: &LowerOptions) -> Result<Lowered, LowerError> {
    // Pre-flight: slot sizing and parameter shapes.
    let mut slot_bytes = 8usize;
    for p in f.params() {
        match p.ty {
            Type::Ptr | Type::Scalar(_) => {}
            ty => {
                return Err(LowerError::function(format!(
                    "parameter of type {ty} is not callable natively"
                )))
            }
        }
    }
    for i in 0..f.num_inst_slots() {
        let ty = f.ty(InstId(i as u32));
        if !ty.is_value() {
            continue;
        }
        let sz = ty.size_bytes() as usize;
        if sz > MAX_VALUE_BYTES {
            return Err(LowerError::function(format!(
                "value of type {ty} is wider than {MAX_VALUE_BYTES} bytes"
            )));
        }
        slot_bytes = slot_bytes.max(sz);
    }
    slot_bytes = slot_bytes.next_multiple_of(8);

    let mut staging = Vec::new();
    for b in f.block_ids() {
        for &id in f.block(b).insts() {
            if matches!(f.kind(id), InstKind::Phi { .. }) {
                staging.push((id, f.num_inst_slots() + staging.len()));
            } else {
                break;
            }
        }
    }

    let total_slots = f.num_inst_slots() + staging.len();
    let frame = (total_slots * slot_bytes).next_multiple_of(16);
    if frame > MAX_FRAME_BYTES {
        return Err(LowerError::function(format!(
            "frame of {frame} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }

    let mut a = Asm::new();
    let block_labels: Vec<Label> = f.block_ids().map(|_| a.new_label()).collect();
    let l_epilogue = a.new_label();
    let l_trap_oob = a.new_label();
    let l_trap_div = a.new_label();
    let l_trap_fuel = a.new_label();

    let mut lw = Lower {
        f,
        a,
        slot_bytes,
        staging,
        block_labels,
        l_epilogue,
        l_trap_oob,
        l_trap_div,
        l_trap_fuel,
        frame: frame as i32,
        dump: String::new(),
        ops: 0,
        opts,
        pc: PcMap::default(),
    };
    lw.header();
    lw.prologue();
    for (bi, b) in f.block_ids().enumerate() {
        lw.block(bi, b)?;
    }
    lw.exits();
    let ops = lw.ops;
    // `finish()` patches rel32 fixups in place and never moves or adds
    // bytes, so the offsets recorded during emission stay valid.
    let code = lw.a.finish();
    lw.pc
        .validate(code.len())
        .map_err(|e| LowerError::function(format!("internal error: PcMap broken: {e}")))?;
    lw.dump
        .push_str(&format!("end: code={}B ops={}\n", code.len(), ops));
    Ok(Lowered {
        code,
        dump: lw.dump,
        ops_lowered: ops,
        pc_map: lw.pc,
        num_blocks: f.block_ids().count(),
        instrumented: opts.instrument,
    })
}

impl<'a> Lower<'a> {
    fn slot(&self, id: InstId) -> i32 {
        (id.index() * self.slot_bytes) as i32
    }

    fn staging_slot(&self, id: InstId) -> i32 {
        let idx = self
            .staging
            .iter()
            .find(|(p, _)| *p == id)
            .map(|(_, s)| *s)
            .expect("phi has a staging slot");
        (idx * self.slot_bytes) as i32
    }

    fn note(&mut self, start: usize, text: &str) {
        let len = self.a.here() - start;
        self.dump
            .push_str(&format!("  {text} @{start:#06x}+{len}\n"));
    }

    fn header(&mut self) {
        let f = self.f;
        let ret = f.ret_ty();
        self.dump
            .push_str(&format!("jit `{}` isa=sse2 ret={ret}\n", f.name()));
        let params: Vec<String> = f
            .params()
            .iter()
            .map(|p| format!("{}:{}", p.name, p.ty))
            .collect();
        self.dump.push_str(&format!(
            "  params: [{}] slots={} staging={} slot_bytes={} frame_bytes={}\n",
            params.join(", "),
            f.num_inst_slots(),
            self.staging.len(),
            self.slot_bytes,
            self.frame,
        ));
    }

    fn prologue(&mut self) {
        let start = self.a.here();
        let a = &mut self.a;
        a.push_r(RBP);
        a.push_r(R12);
        a.push_r(R13);
        a.push_r(R14);
        a.push_r(R15);
        a.mov_rr(R15, RDI);
        a.mov_load(R12, R15, CTX_MEM_BASE);
        a.mov_load(R13, R15, CTX_MEM_SIZE);
        a.mov_load(R14, R15, CTX_FUEL);
        a.sub_rsp(self.frame);
        for i in 0..self.f.params().len() {
            let disp = self.slot(self.f.param(i));
            let ty = self.f.params()[i].ty;
            self.a.mov_load(RAX, RSI, (8 * i) as i32);
            match ty {
                Type::Scalar(ScalarType::I32) | Type::Scalar(ScalarType::F32) => {
                    self.a.mov32_store(RSP, disp, RAX)
                }
                _ => self.a.mov_store(RSP, disp, RAX),
            }
        }
        let entry = self.block_labels[0];
        self.a.jmp(entry);
        self.stub(start, "prologue");
        self.note(start, "prologue = pin r12/r13/r14/r15, spill params");
    }

    /// Records `[start, here)` as a function-level stub range.
    fn stub(&mut self, start: usize, name: &'static str) {
        let end = self.a.here();
        self.pc
            .push(start, end, PcKind::Stub { name, block: None }, None);
    }

    fn exits(&mut self) {
        let start = self.a.here();
        let a = &mut self.a;
        a.bind(self.l_trap_oob);
        a.mov_store(R15, CTX_TRAP_ADDR, RAX);
        a.mov_ri(RAX, crate::runtime::status::OOB as u64);
        a.jmp(self.l_epilogue);
        a.bind(self.l_trap_div);
        a.mov_ri(RAX, crate::runtime::status::DIV_ZERO as u64);
        a.jmp(self.l_epilogue);
        a.bind(self.l_trap_fuel);
        a.mov_ri(RAX, crate::runtime::status::FUEL as u64);
        a.bind(self.l_epilogue);
        a.mov_store(R15, CTX_FUEL, R14);
        a.add_rsp(self.frame);
        a.pop_r(R15);
        a.pop_r(R14);
        a.pop_r(R13);
        a.pop_r(R12);
        a.pop_r(RBP);
        a.ret();
        self.stub(start, "exits");
        self.note(start, "exits = oob/div0/fuel stubs, epilogue");
    }

    /// `test r14, r14; jz fuel; dec r14` — the same trap point as the
    /// interpreter's check-then-decrement.
    fn fuel_gate(&mut self) {
        self.a.test_rr(R14, R14);
        self.a.jcc(Cc::E, self.l_trap_fuel);
        self.a.dec_r(R14);
    }

    /// Frame-to-frame byte copy: 16-byte chunks through `xmm7`, then 8-
    /// and 4-byte tails through `rax`. Full-width vector copies matter:
    /// a 16-byte load spanning two narrower stores defeats store-to-load
    /// forwarding, so vector slots are always written in one piece.
    fn copy_frame(&mut self, src: i32, dst: i32, bytes: usize) {
        let mut off = 0i32;
        let mut rem = bytes;
        while rem >= 16 {
            self.a.movups_load(XMM7, RSP, src + off);
            self.a.movups_store(RSP, dst + off, XMM7);
            off += 16;
            rem -= 16;
        }
        while rem >= 8 {
            self.a.mov_load(RAX, RSP, src + off);
            self.a.mov_store(RSP, dst + off, RAX);
            off += 8;
            rem -= 8;
        }
        if rem >= 4 {
            self.a.mov32_load(RAX, RSP, src + off);
            self.a.mov32_store(RSP, dst + off, RAX);
        }
    }

    /// Gathers scalar lanes from arbitrary frame offsets `srcs` (each
    /// `esz` bytes) into a contiguous vector at `dst`, assembling whole
    /// 16-byte chunks inside xmm registers whenever the lane count
    /// allows, so the destination slot is never a patchwork of narrow
    /// stores (which would stall later packed reads).
    fn gather_lanes(&mut self, srcs: &[i32], esz: i32, dst: i32) -> Result<String, String> {
        let lanes = srcs.len();
        if esz == 8 && lanes.is_multiple_of(2) {
            for (c, pair) in srcs.chunks_exact(2).enumerate() {
                self.a.movsd_load(XMM7, RSP, pair[0]);
                self.a.movhpd_load(XMM7, RSP, pair[1]);
                self.a.movups_store(RSP, dst + c as i32 * 16, XMM7);
            }
            Ok("xmm gather".to_string())
        } else if esz == 4 && lanes.is_multiple_of(4) {
            for (c, quad) in srcs.chunks_exact(4).enumerate() {
                self.a.movss_load(XMM2, RSP, quad[0]);
                self.a.movss_load(XMM3, RSP, quad[1]);
                self.a.unpcklps(XMM2, XMM3);
                self.a.movss_load(XMM3, RSP, quad[2]);
                self.a.movss_load(XMM4, RSP, quad[3]);
                self.a.unpcklps(XMM3, XMM4);
                self.a.movlhps(XMM2, XMM3);
                self.a.movups_store(RSP, dst + c as i32 * 16, XMM2);
            }
            Ok("xmm gather".to_string())
        } else {
            for (j, &src) in srcs.iter().enumerate() {
                self.copy_frame(src, dst + j as i32 * esz, esz as usize);
            }
            Ok("lane moves".to_string())
        }
    }

    /// Integer operand load in canonical widened form.
    fn load_int(&mut self, r: Gpr, disp: i32, st: ScalarType) {
        match st {
            ScalarType::I32 => self.a.movsxd_load(r, RSP, disp),
            _ => self.a.mov_load(r, RSP, disp),
        }
    }

    /// Integer result store (truncating for `i32`).
    fn store_int(&mut self, disp: i32, st: ScalarType) {
        match st {
            ScalarType::I32 => self.a.mov32_store(RSP, disp, RAX),
            _ => self.a.mov_store(RSP, disp, RAX),
        }
    }

    fn load_float(&mut self, x: Xmm, disp: i32, st: ScalarType) {
        match st {
            ScalarType::F32 => self.a.movss_load(x, RSP, disp),
            _ => self.a.movsd_load(x, RSP, disp),
        }
    }

    fn store_float(&mut self, disp: i32, st: ScalarType, x: Xmm) {
        match st {
            ScalarType::F32 => self.a.movss_store(RSP, disp, x),
            _ => self.a.movsd_store(RSP, disp, x),
        }
    }

    /// Bounds-checks `[addr, addr + len)` against the null page and the
    /// guest size, leaving the *host* address in `rax`. Traps with the
    /// guest address still in `rax`.
    fn check_and_host_addr(&mut self, ptr_disp: i32, len: u64) {
        self.a.mov_load(RAX, RSP, ptr_disp);
        self.a.cmp_ri8(RAX, NULL_PAGE);
        self.a.jcc(Cc::B, self.l_trap_oob);
        self.a.mov_rr(RCX, R13);
        self.a.mov_ri(RDX, len);
        self.a.sub_rr(RCX, RDX);
        self.a.jcc(Cc::B, self.l_trap_oob); // len > mem_size
        self.a.cmp_rr(RAX, RCX);
        self.a.jcc(Cc::A, self.l_trap_oob); // addr > mem_size - len
        self.a.add_rr(RAX, R12);
    }

    /// Guest-to-frame copy; host source address in `rax`. Vector-width
    /// chunks go through `xmm7` so the slot is written in one 16-byte
    /// store (see [`Self::copy_frame`] on why that matters).
    fn copy_mem_to_frame(&mut self, dst: i32, bytes: usize) {
        let mut off = 0i32;
        let mut rem = bytes;
        while rem >= 16 {
            self.a.movups_load(XMM7, RAX, off);
            self.a.movups_store(RSP, dst + off, XMM7);
            off += 16;
            rem -= 16;
        }
        while rem >= 8 {
            self.a.mov_load(RCX, RAX, off);
            self.a.mov_store(RSP, dst + off, RCX);
            off += 8;
            rem -= 8;
        }
        if rem >= 4 {
            self.a.mov32_load(RCX, RAX, off);
            self.a.mov32_store(RSP, dst + off, RCX);
        }
    }

    /// Frame-to-guest copy; host destination address in `rax`.
    fn copy_frame_to_mem(&mut self, src: i32, bytes: usize) {
        let mut off = 0i32;
        let mut rem = bytes;
        while rem >= 16 {
            self.a.movups_load(XMM7, RSP, src + off);
            self.a.movups_store(RAX, off, XMM7);
            off += 16;
            rem -= 16;
        }
        while rem >= 8 {
            self.a.mov_load(RCX, RSP, src + off);
            self.a.mov_store(RAX, off, RCX);
            off += 8;
            rem -= 8;
        }
        if rem >= 4 {
            self.a.mov32_load(RCX, RSP, src + off);
            self.a.mov32_store(RAX, off, RCX);
        }
    }

    fn int_binop(
        &mut self,
        op: BinOp,
        st: ScalarType,
        ad: i32,
        bd: i32,
        dst: i32,
    ) -> Result<(), String> {
        self.load_int(RAX, ad, st);
        self.load_int(RCX, bd, st);
        match op {
            BinOp::Add => self.a.add_rr(RAX, RCX),
            BinOp::Sub => self.a.sub_rr(RAX, RCX),
            BinOp::Mul => self.a.imul_rr(RAX, RCX),
            BinOp::And => self.a.and_rr(RAX, RCX),
            BinOp::Or => self.a.or_rr(RAX, RCX),
            BinOp::Xor => self.a.xor_rr(RAX, RCX),
            BinOp::Shl => self.a.shl_cl(RAX),
            BinOp::Shr => self.a.sar_cl(RAX),
            BinOp::Min => {
                self.a.cmp_rr(RAX, RCX);
                self.a.cmov(Cc::G, RAX, RCX);
            }
            BinOp::Max => {
                self.a.cmp_rr(RAX, RCX);
                self.a.cmov(Cc::L, RAX, RCX);
            }
            BinOp::Div | BinOp::Rem => {
                let rem = op == BinOp::Rem;
                self.a.test_rr(RCX, RCX);
                self.a.jcc(Cc::E, self.l_trap_div);
                let special = self.a.new_label();
                let done = self.a.new_label();
                self.a.cmp_ri8(RCX, -1);
                self.a.jcc(Cc::E, special);
                self.a.cqo();
                self.a.idiv_r(RCX);
                if rem {
                    self.a.mov_rr(RAX, RDX);
                }
                self.a.jmp(done);
                self.a.bind(special);
                // x / -1 wraps to -x; x % -1 is 0 (avoids the idiv #DE on
                // MIN / -1, matching wrapping_div/wrapping_rem).
                if rem {
                    self.a.xor_rr(RAX, RAX);
                } else {
                    self.a.neg_r(RAX);
                }
                self.a.bind(done);
            }
        }
        self.store_int(dst, st);
        Ok(())
    }

    fn float_binop(
        &mut self,
        op: BinOp,
        st: ScalarType,
        ad: i32,
        bd: i32,
        dst: i32,
    ) -> Result<(), String> {
        let prefix: &[u8] = if st == ScalarType::F32 {
            &[0xF3]
        } else {
            &[0xF2]
        };
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let opc = match op {
                    BinOp::Add => 0x58,
                    BinOp::Sub => 0x5C,
                    BinOp::Mul => 0x59,
                    _ => 0x5E,
                };
                self.load_float(XMM0, ad, st);
                self.a.sse_rm(prefix, opc, XMM0, RSP, bd);
                self.store_float(dst, st, XMM0);
            }
            BinOp::Min | BinOp::Max | BinOp::Rem => {
                let addr = match (op, st) {
                    (BinOp::Min, ScalarType::F32) => helpers::fmin32 as *const () as usize,
                    (BinOp::Max, ScalarType::F32) => helpers::fmax32 as *const () as usize,
                    (BinOp::Rem, ScalarType::F32) => helpers::frem32 as *const () as usize,
                    (BinOp::Min, _) => helpers::fmin64 as *const () as usize,
                    (BinOp::Max, _) => helpers::fmax64 as *const () as usize,
                    (BinOp::Rem, _) => helpers::frem64 as *const () as usize,
                    _ => unreachable!("outer match covers min/max/rem only"),
                };
                self.load_float(XMM0, ad, st);
                self.load_float(XMM1, bd, st);
                self.a.mov_ri(RAX, addr as u64);
                self.a.call_r(RAX);
                self.store_float(dst, st, XMM0);
            }
            op => return Err(format!("float operands for integer-only op {op}")),
        }
        Ok(())
    }

    fn scalar_binop(
        &mut self,
        op: BinOp,
        st: ScalarType,
        ad: i32,
        bd: i32,
        dst: i32,
    ) -> Result<(), String> {
        if st.is_float() {
            self.float_binop(op, st, ad, bd, dst)
        } else {
            self.int_binop(op, st, ad, bd, dst)
        }
    }

    /// Scalar compare producing a 4-byte 0/1 at `dst`.
    fn scalar_cmp(
        &mut self,
        pred: CmpPred,
        ty: Type,
        ad: i32,
        bd: i32,
        dst: i32,
    ) -> Result<(), String> {
        match ty {
            Type::Scalar(st) if st.is_float() => {
                // `ucomi` + unsigned conditions; unordered (NaN) yields
                // false for everything except `ne`.
                self.load_float(XMM0, ad, st);
                self.load_float(XMM1, bd, st);
                let ucomi = |lw: &mut Self, x: Xmm, y: Xmm| match st {
                    ScalarType::F32 => lw.a.ucomiss(x, y),
                    _ => lw.a.ucomisd(x, y),
                };
                match pred {
                    CmpPred::Eq | CmpPred::Ne => {
                        ucomi(self, XMM0, XMM1);
                        if pred == CmpPred::Eq {
                            self.a.setcc(Cc::E, RAX);
                            self.a.setcc(Cc::Np, RCX);
                            self.a.movzx_rb(RAX, RAX);
                            self.a.movzx_rb(RCX, RCX);
                            self.a.and_rr(RAX, RCX);
                        } else {
                            self.a.setcc(Cc::Ne, RAX);
                            self.a.setcc(Cc::P, RCX);
                            self.a.movzx_rb(RAX, RAX);
                            self.a.movzx_rb(RCX, RCX);
                            self.a.or_rr(RAX, RCX);
                        }
                    }
                    CmpPred::Lt | CmpPred::Le => {
                        ucomi(self, XMM1, XMM0);
                        self.a
                            .setcc(if pred == CmpPred::Lt { Cc::A } else { Cc::Ae }, RAX);
                        self.a.movzx_rb(RAX, RAX);
                    }
                    CmpPred::Gt | CmpPred::Ge => {
                        ucomi(self, XMM0, XMM1);
                        self.a
                            .setcc(if pred == CmpPred::Gt { Cc::A } else { Cc::Ae }, RAX);
                        self.a.movzx_rb(RAX, RAX);
                    }
                }
            }
            Type::Scalar(st) => {
                self.load_int(RAX, ad, st);
                self.load_int(RCX, bd, st);
                self.a.cmp_rr(RAX, RCX);
                let cc = match pred {
                    CmpPred::Eq => Cc::E,
                    CmpPred::Ne => Cc::Ne,
                    CmpPred::Lt => Cc::L,
                    CmpPred::Le => Cc::Le,
                    CmpPred::Gt => Cc::G,
                    CmpPred::Ge => Cc::Ge,
                };
                self.a.setcc(cc, RAX);
                self.a.movzx_rb(RAX, RAX);
            }
            Type::Ptr => {
                self.a.mov_load(RAX, RSP, ad);
                self.a.mov_load(RCX, RSP, bd);
                self.a.cmp_rr(RAX, RCX);
                let cc = match pred {
                    CmpPred::Eq => Cc::E,
                    CmpPred::Ne => Cc::Ne,
                    CmpPred::Lt => Cc::B,
                    CmpPred::Le => Cc::Be,
                    CmpPred::Gt => Cc::A,
                    CmpPred::Ge => Cc::Ae,
                };
                self.a.setcc(cc, RAX);
                self.a.movzx_rb(RAX, RAX);
            }
            ty => return Err(format!("cmp on operands of type {ty}")),
        }
        self.a.mov32_store(RSP, dst, RAX);
        Ok(())
    }

    fn scalar_unop(&mut self, op: UnOp, st: ScalarType, src: i32, dst: i32) -> Result<(), String> {
        if st.is_float() {
            let logic_prefix: &[u8] = if st == ScalarType::F32 { &[] } else { &[0x66] };
            match op {
                UnOp::Neg | UnOp::Abs => {
                    let (mask, opc) = match op {
                        UnOp::Neg if st == ScalarType::F32 => (0x8000_0000u64, 0x57),
                        UnOp::Neg => (0x8000_0000_0000_0000u64, 0x57),
                        _ if st == ScalarType::F32 => (0x7FFF_FFFFu64, 0x54),
                        _ => (0x7FFF_FFFF_FFFF_FFFFu64, 0x54),
                    };
                    self.load_float(XMM0, src, st);
                    self.a.mov_ri(RAX, mask);
                    if st == ScalarType::F32 {
                        self.a.movd_xr(XMM1, RAX);
                    } else {
                        self.a.movq_xr(XMM1, RAX);
                    }
                    self.a.sse_rr(logic_prefix, opc, XMM0, XMM1);
                    self.store_float(dst, st, XMM0);
                }
                UnOp::Sqrt => {
                    let prefix: &[u8] = if st == ScalarType::F32 {
                        &[0xF3]
                    } else {
                        &[0xF2]
                    };
                    self.load_float(XMM0, src, st);
                    self.a.sse_rr(prefix, 0x51, XMM0, XMM0);
                    self.store_float(dst, st, XMM0);
                }
                UnOp::Not => return Err("not on float".into()),
            }
        } else {
            self.load_int(RAX, src, st);
            match op {
                UnOp::Neg => self.a.neg_r(RAX),
                UnOp::Not => self.a.not_r(RAX),
                UnOp::Abs => {
                    self.a.mov_rr(RCX, RAX);
                    self.a.neg_r(RCX);
                    self.a.test_rr(RAX, RAX);
                    self.a.cmov(Cc::S, RAX, RCX);
                }
                UnOp::Sqrt => return Err("sqrt on integer".into()),
            }
            self.store_int(dst, st);
        }
        Ok(())
    }

    fn scalar_cast(
        &mut self,
        kind: CastKind,
        from: ScalarType,
        to: ScalarType,
        src: i32,
        dst: i32,
    ) -> Result<(), String> {
        match kind {
            CastKind::Sitofp => {
                // Through f64 in both cases, mirroring the interpreter's
                // `f64::from(i32)` / `i64 as f64` then optional narrow.
                self.load_int(RAX, src, from);
                self.a.cvtsi2sd(XMM0, RAX);
                if to == ScalarType::F32 {
                    self.a.cvtsd2ss(XMM0, XMM0);
                }
                self.store_float(dst, to, XMM0);
            }
            CastKind::Fpext => {
                self.a.movss_load(XMM0, RSP, src);
                self.a.cvtss2sd(XMM0, XMM0);
                self.a.movsd_store(RSP, dst, XMM0);
            }
            CastKind::Fptrunc => {
                self.a.movsd_load(XMM0, RSP, src);
                self.a.cvtsd2ss(XMM0, XMM0);
                self.a.movss_store(RSP, dst, XMM0);
            }
            CastKind::Sext => {
                self.a.movsxd_load(RAX, RSP, src);
                self.a.mov_store(RSP, dst, RAX);
            }
            CastKind::Trunc => {
                self.a.mov32_load(RAX, RSP, src);
                self.a.mov32_store(RSP, dst, RAX);
            }
            CastKind::Fptosi => {
                return Err("fptosi saturates per Rust `as`; interpreter only".into());
            }
        }
        Ok(())
    }

    /// Phi parallel-copy for the edge `from -> to`.
    fn edge_moves(&mut self, from: BlockId, to: BlockId) -> Result<usize, String> {
        let f = self.f;
        let mut moves: Vec<(InstId, InstId)> = Vec::new();
        for &id in f.block(to).insts() {
            match f.kind(id) {
                InstKind::Phi { incoming } => {
                    let (_, src) = incoming
                        .iter()
                        .find(|(b, _)| *b == from)
                        .ok_or_else(|| format!("phi {id} has no edge from {from}"))?;
                    moves.push((id, *src));
                }
                _ => break,
            }
        }
        for &(phi, src) in &moves {
            let bytes = f.ty(phi).size_bytes() as usize;
            let (s, d) = (self.slot(src), self.staging_slot(phi));
            self.copy_frame(s, d, bytes);
        }
        for &(phi, _) in &moves {
            let bytes = f.ty(phi).size_bytes() as usize;
            let (s, d) = (self.staging_slot(phi), self.slot(phi));
            self.copy_frame(s, d, bytes);
        }
        Ok(moves.len())
    }

    fn block(&mut self, bi: usize, b: BlockId) -> Result<(), LowerError> {
        let f = self.f;
        self.a.bind(self.block_labels[bi]);
        self.dump.push_str(&format!("{}:\n", f.block(b).name));
        if self.opts.instrument {
            // Bump the per-block execution counter through the context's
            // `hot_counts` pointer. All values live in stack slots at
            // block boundaries, so `rax` is dead here.
            let start = self.a.here();
            self.a.mov_load(RAX, R15, CTX_HOT);
            self.a.inc_mem(RAX, (bi * 8) as i32);
            let end = self.a.here();
            self.pc.push(
                start,
                end,
                PcKind::Stub {
                    name: "hot-counter",
                    block: Some(bi as u32),
                },
                None,
            );
            self.note(start, "hot = inc block counter");
        }
        for &id in f.block(b).insts() {
            let kind = f.kind(id);
            if matches!(kind, InstKind::Phi { .. }) {
                continue;
            }
            let start = self.a.here();
            self.fuel_gate();
            self.ops += 1;
            let text = self
                .lower_inst(b, id)
                .map_err(|e| LowerError::at(id, kind, e))?;
            let end = self.a.here();
            self.pc.push(
                start,
                end,
                PcKind::Inst {
                    inst: id.index() as u32,
                    class: classify(kind),
                    block: bi as u32,
                },
                self.opts.decisions.get(&(id.index() as u32)).cloned(),
            );
            self.note(start, &text);
        }
        // A verifier-clean block ends in a terminator, so this is only
        // reachable for malformed IR; the interpreter errors there too.
        let last = f.block(b).insts().last().copied();
        let terminated = last.is_some_and(|id| {
            matches!(
                f.kind(id),
                InstKind::Jump { .. } | InstKind::Branch { .. } | InstKind::Ret { .. }
            )
        });
        if !terminated {
            return Err(LowerError::function(format!(
                "block {} falls through without a terminator",
                f.block(b).name
            )));
        }
        Ok(())
    }

    fn lower_inst(&mut self, b: BlockId, id: InstId) -> Result<String, String> {
        let f = self.f;
        let kind = f.kind(id);
        let dst = self.slot(id);
        let text = match kind {
            InstKind::Param(_) | InstKind::Phi { .. } => unreachable!(),
            InstKind::Const(c) => {
                match *c {
                    Constant::I32(v) => {
                        self.a.mov_ri(RAX, v as u32 as u64);
                        self.a.mov32_store(RSP, dst, RAX);
                    }
                    Constant::I64(v) => {
                        self.a.mov_ri(RAX, v as u64);
                        self.a.mov_store(RSP, dst, RAX);
                    }
                    Constant::F32(v) => {
                        self.a.mov_ri(RAX, u64::from(v.to_bits()));
                        self.a.mov32_store(RSP, dst, RAX);
                    }
                    Constant::F64(v) => {
                        self.a.mov_ri(RAX, v.to_bits());
                        self.a.mov_store(RSP, dst, RAX);
                    }
                }
                format!("%{} const {} = mov-imm", id.index(), f.ty(id))
            }
            InstKind::Binary { op, lhs, rhs } => {
                let (ad, bd) = (self.slot(*lhs), self.slot(*rhs));
                match f.ty(id) {
                    Type::Scalar(st) => {
                        self.scalar_binop(*op, st, ad, bd, dst)?;
                        format!("%{} binary.{op} {} = scalar", id.index(), f.ty(id))
                    }
                    Type::Vector(vt) => {
                        let strategy = self.vector_binop_uniform(*op, vt, ad, bd, dst)?;
                        format!("%{} binary.{op} {} = {strategy}", id.index(), f.ty(id))
                    }
                    ty => return Err(format!("binary op on {ty}")),
                }
            }
            InstKind::BinaryLanewise { ops, lhs, rhs } => {
                let vt = f
                    .ty(id)
                    .as_vector()
                    .ok_or_else(|| "lanewise op on non-vector".to_string())?;
                let (ad, bd) = (self.slot(*lhs), self.slot(*rhs));
                let text = self.vector_binop_lanewise(ops, vt, ad, bd, dst)?;
                format!(
                    "%{} lanewise[{}] {} = {text}",
                    id.index(),
                    ops.len(),
                    f.ty(id)
                )
            }
            InstKind::Unary { op, operand } => {
                let src = self.slot(*operand);
                match f.ty(id) {
                    Type::Scalar(st) => {
                        self.scalar_unop(*op, st, src, dst)?;
                        format!("%{} unary.{op} {} = scalar", id.index(), f.ty(id))
                    }
                    Type::Vector(vt) => {
                        let esz = vt.elem.size_bytes() as i32;
                        for i in 0..i32::from(vt.lanes) {
                            self.scalar_unop(*op, vt.elem, src + i * esz, dst + i * esz)?;
                        }
                        format!("%{} unary.{op} {} = per-lane", id.index(), f.ty(id))
                    }
                    ty => return Err(format!("unary op on {ty}")),
                }
            }
            InstKind::Cast { kind, operand } => {
                let src = self.slot(*operand);
                let from_ty = f.ty(*operand);
                let to_ty = f.ty(id);
                match (from_ty, to_ty) {
                    (Type::Scalar(fs), Type::Scalar(ts)) => {
                        self.scalar_cast(*kind, fs, ts, src, dst)?;
                        format!("%{} cast.{kind} {from_ty}->{to_ty} = scalar", id.index())
                    }
                    (Type::Vector(fv), Type::Vector(tv)) => {
                        let (fe, te) = (fv.elem.size_bytes() as i32, tv.elem.size_bytes() as i32);
                        for i in 0..i32::from(fv.lanes) {
                            self.scalar_cast(*kind, fv.elem, tv.elem, src + i * fe, dst + i * te)?;
                        }
                        format!("%{} cast.{kind} {from_ty}->{to_ty} = per-lane", id.index())
                    }
                    _ => return Err(format!("cast {kind} between {from_ty} and {to_ty}")),
                }
            }
            InstKind::Cmp { pred, lhs, rhs } => {
                let (ad, bd) = (self.slot(*lhs), self.slot(*rhs));
                let in_ty = f.ty(*lhs);
                match in_ty {
                    Type::Vector(vt) => {
                        let esz = vt.elem.size_bytes() as i32;
                        for i in 0..i32::from(vt.lanes) {
                            self.scalar_cmp(
                                *pred,
                                Type::Scalar(vt.elem),
                                ad + i * esz,
                                bd + i * esz,
                                dst + i * 4,
                            )?;
                        }
                        format!("%{} cmp.{pred} {in_ty} = per-lane", id.index())
                    }
                    _ => {
                        self.scalar_cmp(*pred, in_ty, ad, bd, dst)?;
                        format!("%{} cmp.{pred} {in_ty} = scalar", id.index())
                    }
                }
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => {
                let bytes = f.ty(id).size_bytes() as usize;
                let (td, ed) = (self.slot(*on_true), self.slot(*on_false));
                match f.ty(*cond) {
                    Type::Vector(mv) => {
                        let vt = f
                            .ty(id)
                            .as_vector()
                            .ok_or_else(|| "vector-mask select of scalar".to_string())?;
                        let (msz, esz) = (mv.elem.size_bytes() as i32, vt.elem.size_bytes() as i32);
                        let md = self.slot(*cond);
                        for i in 0..i32::from(vt.lanes) {
                            match mv.elem {
                                ScalarType::I32 => self.a.mov32_load(RCX, RSP, md + i * msz),
                                ScalarType::I64 => self.a.mov_load(RCX, RSP, md + i * msz),
                                st => return Err(format!("select mask of {st} lanes")),
                            }
                            self.a.test_rr(RCX, RCX);
                            let l_else = self.a.new_label();
                            let l_end = self.a.new_label();
                            self.a.jcc(Cc::E, l_else);
                            self.copy_frame(td + i * esz, dst + i * esz, esz as usize);
                            self.a.jmp(l_end);
                            self.a.bind(l_else);
                            self.copy_frame(ed + i * esz, dst + i * esz, esz as usize);
                            self.a.bind(l_end);
                        }
                        format!("%{} select {} = per-lane mask", id.index(), f.ty(id))
                    }
                    Type::Scalar(ScalarType::I32) | Type::Scalar(ScalarType::I64) => {
                        match f.ty(*cond) {
                            Type::Scalar(ScalarType::I32) => {
                                self.a.mov32_load(RCX, RSP, self.slot(*cond))
                            }
                            _ => self.a.mov_load(RCX, RSP, self.slot(*cond)),
                        }
                        self.a.test_rr(RCX, RCX);
                        let l_else = self.a.new_label();
                        let l_end = self.a.new_label();
                        self.a.jcc(Cc::E, l_else);
                        self.copy_frame(td, dst, bytes);
                        self.a.jmp(l_end);
                        self.a.bind(l_else);
                        self.copy_frame(ed, dst, bytes);
                        self.a.bind(l_end);
                        format!("%{} select {} = branchy", id.index(), f.ty(id))
                    }
                    ty => return Err(format!("select condition of type {ty}")),
                }
            }
            InstKind::Load { ptr } => {
                let bytes = f.ty(id).size_bytes() as usize;
                self.check_and_host_addr(self.slot(*ptr), bytes as u64);
                self.copy_mem_to_frame(dst, bytes);
                format!(
                    "%{} load {} = checked copy {}B",
                    id.index(),
                    f.ty(id),
                    bytes
                )
            }
            InstKind::Store { ptr, value } => {
                let bytes = f.ty(*value).size_bytes() as usize;
                self.check_and_host_addr(self.slot(*ptr), bytes as u64);
                self.copy_frame_to_mem(self.slot(*value), bytes);
                format!("store {} = checked copy {}B", f.ty(*value), bytes)
            }
            InstKind::PtrAdd { ptr, offset } => {
                self.a.mov_load(RAX, RSP, self.slot(*ptr));
                match f.ty(*offset) {
                    Type::Scalar(ScalarType::I32) => {
                        self.a.movsxd_load(RCX, RSP, self.slot(*offset))
                    }
                    _ => self.a.mov_load(RCX, RSP, self.slot(*offset)),
                }
                self.a.add_rr(RAX, RCX);
                self.a.mov_store(RSP, dst, RAX);
                format!("%{} ptradd = add64", id.index())
            }
            InstKind::Splat { value, lanes } => {
                let st = f
                    .ty(*value)
                    .as_scalar()
                    .ok_or_else(|| "splat of non-scalar".to_string())?;
                let esz = st.size_bytes() as i32;
                let total = i32::from(*lanes) * esz;
                let src = self.slot(*value);
                if total % 16 == 0 {
                    // Duplicate inside xmm7 and write whole 16-byte
                    // chunks: downstream packed reads must not find
                    // the slot assembled from narrow stores.
                    if esz == 4 {
                        self.a.movss_load(XMM7, RSP, src);
                        self.a.pshufd(XMM7, XMM7, 0x00);
                    } else {
                        self.a.movsd_load(XMM7, RSP, src);
                        self.a.unpcklpd(XMM7, XMM7);
                    }
                    let mut off = 0i32;
                    while off < total {
                        self.a.movups_store(RSP, dst + off, XMM7);
                        off += 16;
                    }
                    format!("%{} splat x{lanes} = broadcast packed", id.index())
                } else {
                    if esz == 4 {
                        self.a.mov32_load(RAX, RSP, src);
                    } else {
                        self.a.mov_load(RAX, RSP, src);
                    }
                    for i in 0..i32::from(*lanes) {
                        if esz == 4 {
                            self.a.mov32_store(RSP, dst + i * esz, RAX);
                        } else {
                            self.a.mov_store(RSP, dst + i * esz, RAX);
                        }
                    }
                    format!("%{} splat x{lanes} = broadcast", id.index())
                }
            }
            InstKind::BuildVector { elems } => {
                let mut esz = 0i32;
                for e in elems {
                    let st = f
                        .ty(*e)
                        .as_scalar()
                        .ok_or_else(|| "build-vector of non-scalar".to_string())?;
                    esz = st.size_bytes() as i32;
                }
                let srcs: Vec<i32> = elems.iter().map(|e| self.slot(*e)).collect();
                let text = self.gather_lanes(&srcs, esz, dst)?;
                format!("%{} build-vector x{} = {text}", id.index(), elems.len())
            }
            InstKind::ExtractElement { vector, lane } => {
                let vt = f
                    .ty(*vector)
                    .as_vector()
                    .ok_or_else(|| "extract from non-vector".to_string())?;
                if *lane >= vt.lanes {
                    return Err("extract lane out of range".into());
                }
                let esz = vt.elem.size_bytes() as i32;
                self.copy_frame(
                    self.slot(*vector) + i32::from(*lane) * esz,
                    dst,
                    esz as usize,
                );
                format!("%{} extract lane {lane} = slot copy", id.index())
            }
            InstKind::InsertElement {
                vector,
                value,
                lane,
            } => {
                let vt = f
                    .ty(*vector)
                    .as_vector()
                    .ok_or_else(|| "insert into non-vector".to_string())?;
                if *lane >= vt.lanes {
                    return Err("insert lane out of range".into());
                }
                let esz = vt.elem.size_bytes() as i32;
                if esz == 8 && vt.lanes == 2 {
                    // Patch inside xmm7 and store once, keeping the
                    // destination a single 16-byte write.
                    self.a.movups_load(XMM7, RSP, self.slot(*vector));
                    if *lane == 0 {
                        self.a.movlpd_load(XMM7, RSP, self.slot(*value));
                    } else {
                        self.a.movhpd_load(XMM7, RSP, self.slot(*value));
                    }
                    self.a.movups_store(RSP, dst, XMM7);
                    format!("%{} insert lane {lane} = xmm patch", id.index())
                } else {
                    self.copy_frame(self.slot(*vector), dst, vt.size_bytes() as usize);
                    self.copy_frame(
                        self.slot(*value),
                        dst + i32::from(*lane) * esz,
                        esz as usize,
                    );
                    format!("%{} insert lane {lane} = copy+patch", id.index())
                }
            }
            InstKind::Shuffle { a, b, mask } => {
                let va = f
                    .ty(*a)
                    .as_vector()
                    .ok_or_else(|| "shuffle of non-vector".to_string())?;
                let vb = f
                    .ty(*b)
                    .as_vector()
                    .ok_or_else(|| "shuffle of non-vector".to_string())?;
                let esz = va.elem.size_bytes() as i32;
                let n = i32::from(va.lanes);
                let mut srcs = Vec::with_capacity(mask.len());
                for &m in mask {
                    let m = i32::from(m);
                    srcs.push(if m < n {
                        self.slot(*a) + m * esz
                    } else if m - n < i32::from(vb.lanes) {
                        self.slot(*b) + (m - n) * esz
                    } else {
                        return Err("shuffle index out of range".into());
                    });
                }
                let text = self.gather_lanes(&srcs, esz, dst)?;
                format!("%{} shuffle x{} = {text}", id.index(), mask.len())
            }
            InstKind::Jump { target } => {
                let moves = self.edge_moves(b, *target)?;
                let ti = self.block_index(*target);
                self.a.jmp(self.block_labels[ti]);
                format!("jump {} [{moves} phi moves]", f.block(*target).name)
            }
            InstKind::Branch {
                cond,
                on_true,
                on_false,
            } => {
                match f.ty(*cond) {
                    Type::Scalar(ScalarType::I32) => self.a.mov32_load(RCX, RSP, self.slot(*cond)),
                    Type::Scalar(ScalarType::I64) => self.a.mov_load(RCX, RSP, self.slot(*cond)),
                    ty => return Err(format!("branch condition of type {ty}")),
                }
                self.a.test_rr(RCX, RCX);
                let l_false = self.a.new_label();
                self.a.jcc(Cc::E, l_false);
                let mt = self.edge_moves(b, *on_true)?;
                let ti = self.block_index(*on_true);
                self.a.jmp(self.block_labels[ti]);
                self.a.bind(l_false);
                let mf = self.edge_moves(b, *on_false)?;
                let fi = self.block_index(*on_false);
                self.a.jmp(self.block_labels[fi]);
                format!(
                    "branch {}/{} [{mt}/{mf} phi moves]",
                    f.block(*on_true).name,
                    f.block(*on_false).name
                )
            }
            InstKind::Ret { value } => {
                if let Some(v) = value {
                    let bytes = f.ty(*v).size_bytes() as usize;
                    let src = self.slot(*v);
                    let mut off = 0i32;
                    let mut rem = bytes;
                    while rem >= 8 {
                        self.a.mov_load(RCX, RSP, src + off);
                        self.a.mov_store(R15, CTX_RET + off, RCX);
                        off += 8;
                        rem -= 8;
                    }
                    if rem >= 4 {
                        self.a.mov32_load(RCX, RSP, src + off);
                        self.a.mov32_store(R15, CTX_RET + off, RCX);
                    }
                }
                self.a.xor_rr(RAX, RAX);
                self.a.jmp(self.l_epilogue);
                "ret = status ok".to_string()
            }
        };
        Ok(text)
    }

    /// Per-lane mixed-operator vector op — the committed super-node
    /// instruction SN-SLP exists for. Float add/sub/mul/div lanes are
    /// computed with scalar SSE (bit-identical to the interpreter's
    /// per-lane semantics) but accumulated in xmm registers and written
    /// as whole 16-byte chunks, so a downstream packed consumer never
    /// reloads a slot assembled from narrow stores. Uniform-operator
    /// vectors delegate to the packed path; anything else (integer
    /// lanes, min/max/rem lanes, odd widths) stays per-lane scalar.
    fn vector_binop_lanewise(
        &mut self,
        ops: &[BinOp],
        vt: snslp_ir::VectorType,
        ad: i32,
        bd: i32,
        dst: i32,
    ) -> Result<String, String> {
        if let [first, rest @ ..] = ops {
            if rest.iter().all(|o| o == first) {
                let text = self.vector_binop_uniform(*first, vt, ad, bd, dst)?;
                return Ok(format!("uniform {text}"));
            }
        }
        let esz = vt.elem.size_bytes() as i32;
        let sse_opc = |op: BinOp| match op {
            BinOp::Add => Some(0x58u8),
            BinOp::Sub => Some(0x5C),
            BinOp::Mul => Some(0x59),
            BinOp::Div => Some(0x5E),
            _ => None,
        };
        let fast = vt.elem.is_float()
            && ops.iter().all(|&o| sse_opc(o).is_some())
            && ((esz == 8 && ops.len().is_multiple_of(2))
                || (esz == 4 && ops.len().is_multiple_of(4)));
        if !fast {
            for (i, &op) in ops.iter().enumerate() {
                let o = i as i32 * esz;
                self.scalar_binop(op, vt.elem, ad + o, bd + o, dst + o)?;
            }
            return Ok("per-lane".to_string());
        }
        if esz == 8 {
            for (c, pair) in ops.chunks_exact(2).enumerate() {
                let o = c as i32 * 16;
                self.a.movsd_load(XMM0, RSP, ad + o);
                self.a
                    .sse_rm(&[0xF2], sse_opc(pair[0]).unwrap(), XMM0, RSP, bd + o);
                self.a.movsd_load(XMM1, RSP, ad + o + 8);
                self.a
                    .sse_rm(&[0xF2], sse_opc(pair[1]).unwrap(), XMM1, RSP, bd + o + 8);
                self.a.unpcklpd(XMM0, XMM1);
                self.a.movups_store(RSP, dst + o, XMM0);
            }
        } else {
            let accs = [XMM2, XMM3, XMM4, XMM5];
            for (c, quad) in ops.chunks_exact(4).enumerate() {
                let o = c as i32 * 16;
                for (i, &op) in quad.iter().enumerate() {
                    let lo = o + i as i32 * 4;
                    self.a.movss_load(accs[i], RSP, ad + lo);
                    self.a
                        .sse_rm(&[0xF3], sse_opc(op).unwrap(), accs[i], RSP, bd + lo);
                }
                self.a.unpcklps(XMM2, XMM3);
                self.a.unpcklps(XMM4, XMM5);
                self.a.movlhps(XMM2, XMM4);
                self.a.movups_store(RSP, dst + o, XMM2);
            }
        }
        Ok("mixed packed".to_string())
    }

    /// Uniform binary op over a vector: packed SSE for float
    /// add/sub/mul/div in 16-byte chunks, per-lane scalar otherwise.
    fn vector_binop_uniform(
        &mut self,
        op: BinOp,
        vt: snslp_ir::VectorType,
        ad: i32,
        bd: i32,
        dst: i32,
    ) -> Result<String, String> {
        let esz = vt.elem.size_bytes() as i32;
        let total = i32::from(vt.lanes) * esz;
        let packed_ok =
            vt.elem.is_float() && matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div);
        let mut off = 0i32;
        let mut chunks = 0usize;
        if packed_ok {
            let prefix: &[u8] = if vt.elem == ScalarType::F32 {
                &[]
            } else {
                &[0x66]
            };
            let opc = match op {
                BinOp::Add => 0x58,
                BinOp::Sub => 0x5C,
                BinOp::Mul => 0x59,
                _ => 0x5E,
            };
            while total - off >= 16 {
                self.a.movups_load(XMM0, RSP, ad + off);
                self.a.movups_load(XMM1, RSP, bd + off);
                self.a.sse_rr(prefix, opc, XMM0, XMM1);
                self.a.movups_store(RSP, dst + off, XMM0);
                off += 16;
                chunks += 1;
            }
        }
        let mut tail = 0usize;
        while off < total {
            self.scalar_binop(op, vt.elem, ad + off, bd + off, dst + off)?;
            off += esz;
            tail += 1;
        }
        Ok(match (chunks, tail) {
            (0, _) => format!("per-lane x{tail}"),
            (_, 0) => format!("packed x{chunks}"),
            _ => format!("packed x{chunks} + tail x{tail}"),
        })
    }

    fn block_index(&self, b: BlockId) -> usize {
        self.f
            .block_ids()
            .position(|x| x == b)
            .expect("block id exists")
    }
}
