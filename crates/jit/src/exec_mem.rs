//! Executable code memory, with no dependency on libc.
//!
//! On `x86_64-linux` the three needed system calls (`mmap`, `mprotect`,
//! `munmap`) are issued directly via inline assembly; everywhere else
//! [`ExecMem::new`] reports the platform as unsupported and callers fall
//! back to the interpreter. Pages are mapped writable, filled, then
//! flipped to read+execute — the buffer is never writable and executable
//! at the same time.

use std::fmt;

/// Why code memory could not be materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapError(pub String);

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "executable mapping failed: {}", self.0)
    }
}

/// An owned read+execute mapping holding finalized machine code.
pub struct ExecMem {
    ptr: *mut u8,
    len: usize,
}

impl fmt::Debug for ExecMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecMem").field("len", &self.len).finish()
    }
}

// The mapping is immutable (RX) after construction and freed exactly once
// in `Drop`, so moving it across threads is sound.
unsafe impl Send for ExecMem {}
unsafe impl Sync for ExecMem {}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod sys {
    const SYS_MMAP: usize = 9;
    const SYS_MPROTECT: usize = 10;
    const SYS_MUNMAP: usize = 11;

    pub const PROT_READ: usize = 1;
    pub const PROT_WRITE: usize = 2;
    pub const PROT_EXEC: usize = 4;
    const MAP_PRIVATE: usize = 2;
    const MAP_ANONYMOUS: usize = 32;

    /// Raw syscall; returns the kernel's result (negative errno on error).
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    pub unsafe fn mmap_anon_rw(len: usize) -> Result<*mut u8, isize> {
        let r = syscall6(
            SYS_MMAP,
            0,
            len,
            PROT_READ | PROT_WRITE,
            MAP_PRIVATE | MAP_ANONYMOUS,
            usize::MAX, // fd = -1
            0,
        );
        if r < 0 {
            Err(r)
        } else {
            Ok(r as *mut u8)
        }
    }

    pub unsafe fn mprotect(ptr: *mut u8, len: usize, prot: usize) -> Result<(), isize> {
        let r = syscall6(SYS_MPROTECT, ptr as usize, len, prot, 0, 0, 0);
        if r < 0 {
            Err(r)
        } else {
            Ok(())
        }
    }

    pub unsafe fn munmap(ptr: *mut u8, len: usize) {
        let _ = syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0);
    }
}

impl ExecMem {
    /// Maps `code` into fresh pages and flips them to read+execute.
    ///
    /// # Errors
    ///
    /// Fails with [`MapError`] when the platform is not `x86_64-linux` or
    /// when the kernel rejects the mapping (e.g. `PROT_EXEC` forbidden).
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    pub fn new(code: &[u8]) -> Result<ExecMem, MapError> {
        let len = code.len().max(1).next_multiple_of(4096);
        unsafe {
            let ptr = sys::mmap_anon_rw(len).map_err(|e| MapError(format!("mmap errno {}", -e)))?;
            std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len());
            if let Err(e) = sys::mprotect(ptr, len, sys::PROT_READ | sys::PROT_EXEC) {
                sys::munmap(ptr, len);
                return Err(MapError(format!("mprotect errno {}", -e)));
            }
            Ok(ExecMem { ptr, len })
        }
    }

    /// Non-x86-64-linux stub: native execution is unavailable.
    ///
    /// # Errors
    ///
    /// Always fails; callers fall back to the interpreter.
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    pub fn new(_code: &[u8]) -> Result<ExecMem, MapError> {
        Err(MapError("native execution requires x86_64-linux".into()))
    }

    /// Entry point of the mapped code.
    pub fn entry(&self) -> *const u8 {
        self.ptr
    }
}

impl Drop for ExecMem {
    fn drop(&mut self) {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

#[cfg(all(test, target_arch = "x86_64", target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn maps_and_executes_a_return() {
        // mov eax, 42; ret
        let code = [0xB8, 42, 0, 0, 0, 0xC3];
        let mem = ExecMem::new(&code).unwrap();
        let f: extern "C" fn() -> i32 = unsafe { std::mem::transmute(mem.entry()) };
        assert_eq!(f(), 42);
    }
}
