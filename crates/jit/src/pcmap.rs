//! PC→IR maps: which native byte range implements which IR instruction.
//!
//! The lowering emits a [`PcMap`] alongside the machine code. Its
//! contract is a strict partition: the ranges cover `[0, code_len)`
//! exactly once, in monotonically increasing order, with no gap and no
//! overlap — every emitted byte is attributable. Instruction ranges
//! carry the [`InstId`] index, the interpreter's opcode class for the
//! instruction (the same [`classify`](snslp_interp::classify) the
//! dynamic profile uses, so native and interpreted counts bucket
//! identically), the owning block index, and the vectorization
//! [`DecisionId`] that emitted the instruction where one exists. Backend
//! plumbing that belongs to no instruction (prologue, trap stubs,
//! epilogue, hotness counter bumps) is mapped as named stub ranges.
//!
//! The map is what turns a raw native PC — an instrumented block
//! counter, a SIGPROF-sampled RIP, a `perf` address — back into IR
//! terms.

use snslp_interp::OpClass;
use snslp_trace::DecisionId;

/// What one native byte range implements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcKind {
    /// One IR instruction (its fuel gate plus its body).
    Inst {
        /// Arena index of the instruction.
        inst: u32,
        /// Opcode class, by the interpreter's `classify` rule.
        class: OpClass,
        /// Index of the owning block in `Function::block_ids()` order.
        block: u32,
    },
    /// Backend plumbing: `prologue`, `exits`, `hot-counter`.
    Stub {
        /// Stable stub name.
        name: &'static str,
        /// Owning block index for in-block stubs (the hotness counter
        /// bump); `None` for function-level plumbing.
        block: Option<u32>,
    },
}

/// One contiguous native byte range `[start, end)` and what it encodes.
#[derive(Debug, Clone)]
pub struct PcRange {
    /// First byte offset of the range (inclusive).
    pub start: u32,
    /// One past the last byte offset (exclusive).
    pub end: u32,
    /// What the bytes implement.
    pub kind: PcKind,
    /// The vectorization decision that emitted the instruction, if the
    /// pass recorded one for it.
    pub decision: Option<DecisionId>,
}

/// The full per-function map, in emission order.
#[derive(Debug, Clone, Default)]
pub struct PcMap {
    /// Ranges in ascending, gap-free order.
    pub ranges: Vec<PcRange>,
}

impl PcMap {
    /// Appends a range; `start`/`end` come straight from `Asm::here()`.
    pub fn push(&mut self, start: usize, end: usize, kind: PcKind, decision: Option<DecisionId>) {
        // Zero-length ranges would break the partition invariant without
        // describing any byte; they legitimately occur (e.g. a phi-free
        // jump edge is still never empty, but a defensive skip keeps the
        // contract local).
        if end > start {
            self.ranges.push(PcRange {
                start: start as u32,
                end: end as u32,
                kind,
                decision,
            });
        }
    }

    /// Checks the partition contract against the final code length:
    /// ranges start at 0, are monotonically increasing, chain without
    /// gap or overlap, and end exactly at `code_len`.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn validate(&self, code_len: usize) -> Result<(), String> {
        if code_len == 0 {
            return if self.ranges.is_empty() {
                Ok(())
            } else {
                Err(format!("{} ranges map zero code bytes", self.ranges.len()))
            };
        }
        let mut expect = 0u32;
        for (i, r) in self.ranges.iter().enumerate() {
            if r.end <= r.start {
                return Err(format!(
                    "range {i} is empty or inverted: [{:#x}, {:#x})",
                    r.start, r.end
                ));
            }
            match r.start.cmp(&expect) {
                std::cmp::Ordering::Less => {
                    return Err(format!(
                        "range {i} [{:#x}, {:#x}) overlaps the previous range ending at {expect:#x}",
                        r.start, r.end
                    ));
                }
                std::cmp::Ordering::Greater => {
                    return Err(format!(
                        "gap before range {i}: previous ended at {expect:#x}, next starts at {:#x}",
                        r.start
                    ));
                }
                std::cmp::Ordering::Equal => {}
            }
            expect = r.end;
        }
        if expect as usize != code_len {
            return Err(format!(
                "map covers [0, {expect:#x}) but the function has {code_len:#x} code bytes"
            ));
        }
        Ok(())
    }

    /// Resolves one byte offset to its range (binary search; the map is
    /// sorted by construction).
    pub fn resolve(&self, off: u32) -> Option<&PcRange> {
        let i = self.ranges.partition_point(|r| r.end <= off);
        self.ranges.get(i).filter(|r| r.start <= off && off < r.end)
    }

    /// Per-block opcode-class composition: `matrix[block][class.index()]`
    /// counts the lowered instructions of that class in the block. With
    /// the per-block execution counters of an instrumented run, the
    /// per-class native execution totals are the matrix-vector product —
    /// exact, because the fuel gate proves every non-phi instruction of
    /// an entered block executes (a trapped activation stops mid-block
    /// and is excluded from reconciliation).
    pub fn class_matrix(&self, num_blocks: usize) -> Vec<[u64; OpClass::ALL.len()]> {
        let mut m = vec![[0u64; OpClass::ALL.len()]; num_blocks];
        for r in &self.ranges {
            if let PcKind::Inst { class, block, .. } = r.kind {
                m[block as usize][class.index()] += 1;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(i: u32) -> PcKind {
        PcKind::Inst {
            inst: i,
            class: OpClass::Alu,
            block: 0,
        }
    }

    #[test]
    fn partition_invariants_are_enforced() {
        let mut m = PcMap::default();
        m.push(
            0,
            4,
            PcKind::Stub {
                name: "prologue",
                block: None,
            },
            None,
        );
        m.push(4, 10, inst(0), None);
        m.push(10, 12, inst(1), None);
        assert!(m.validate(12).is_ok());
        assert!(m.validate(13).unwrap_err().contains("code bytes"));

        let mut gap = PcMap::default();
        gap.push(0, 4, inst(0), None);
        gap.push(6, 8, inst(1), None);
        assert!(gap.validate(8).unwrap_err().contains("gap"));

        let mut overlap = PcMap::default();
        overlap.push(0, 4, inst(0), None);
        overlap.push(3, 8, inst(1), None);
        assert!(overlap.validate(8).unwrap_err().contains("overlap"));

        let empty = PcMap::default();
        assert!(empty.validate(0).is_ok());
        assert!(empty.validate(1).is_err());
    }

    #[test]
    fn resolve_finds_the_covering_range() {
        let mut m = PcMap::default();
        m.push(0, 4, inst(0), None);
        m.push(4, 9, inst(1), None);
        let hit = m.resolve(4).unwrap();
        assert_eq!(hit.start, 4);
        let hit = m.resolve(8).unwrap();
        assert_eq!(hit.end, 9);
        assert!(m.resolve(9).is_none());
        assert!(m.resolve(100).is_none());
    }

    #[test]
    fn class_matrix_counts_per_block() {
        let mut m = PcMap::default();
        m.push(
            0,
            4,
            PcKind::Inst {
                inst: 0,
                class: OpClass::Memory,
                block: 0,
            },
            None,
        );
        m.push(
            4,
            8,
            PcKind::Inst {
                inst: 1,
                class: OpClass::Control,
                block: 1,
            },
            None,
        );
        let mx = m.class_matrix(2);
        assert_eq!(mx[0][OpClass::Memory.index()], 1);
        assert_eq!(mx[1][OpClass::Control.index()], 1);
        assert_eq!(mx[0][OpClass::Alu.index()], 0);
    }
}
