//! Linux `perf` export: jitdump files and `/tmp/perf-<pid>.map`.
//!
//! Both formats let external `perf report` symbolize JIT-compiled
//! kernels. The perf-map format is one text line per symbol
//! (`ADDR SIZE name`, hex); the jitdump format is the binary protocol
//! `perf inject --jit` consumes, documented in the kernel tree under
//! `tools/perf/Documentation/jitdump-specification.txt`. Only the
//! `JIT_CODE_LOAD` record is emitted — enough for symbolization.
//!
//! [`jitdump_bytes`] takes the pid and timestamp explicitly so tests can
//! pin them to zero and golden the file structurally: every other byte
//! is a function of the compiled code alone.

/// One function to export: name, entry address, and machine code.
#[derive(Debug)]
pub struct JitSym<'a> {
    /// Symbol name as `perf` should display it.
    pub name: &'a str,
    /// Runtime entry address of the code.
    pub addr: u64,
    /// The machine code bytes.
    pub code: &'a [u8],
}

const JITDUMP_MAGIC: u32 = 0x4A69_5444; // "JiTD"
const JITDUMP_VERSION: u32 = 1;
const ELF_MACH_X86_64: u32 = 62;
const JIT_CODE_LOAD: u32 = 0;
const HEADER_BYTES: u32 = 40;
/// Fixed part of a JIT_CODE_LOAD record: the 16-byte common prefix plus
/// pid/tid (2×u32) and vma/code_addr/code_size/code_index (4×u64).
const LOAD_FIXED_BYTES: usize = 16 + 8 + 32;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Renders a complete jitdump file for the given symbols.
///
/// Deterministic: identical inputs (including `pid`/`timestamp`, which
/// goldens pin to zero) produce identical bytes.
pub fn jitdump_bytes(syms: &[JitSym<'_>], pid: u32, timestamp: u64) -> Vec<u8> {
    let mut out = Vec::new();
    // File header.
    put_u32(&mut out, JITDUMP_MAGIC);
    put_u32(&mut out, JITDUMP_VERSION);
    put_u32(&mut out, HEADER_BYTES);
    put_u32(&mut out, ELF_MACH_X86_64);
    put_u32(&mut out, 0); // pad1
    put_u32(&mut out, pid);
    put_u64(&mut out, timestamp);
    put_u64(&mut out, 0); // flags
    for (index, sym) in syms.iter().enumerate() {
        let total = LOAD_FIXED_BYTES + sym.name.len() + 1 + sym.code.len();
        put_u32(&mut out, JIT_CODE_LOAD);
        put_u32(&mut out, total as u32);
        put_u64(&mut out, timestamp);
        put_u32(&mut out, pid);
        put_u32(&mut out, pid); // tid: single-threaded process
        put_u64(&mut out, sym.addr); // vma
        put_u64(&mut out, sym.addr); // code_addr
        put_u64(&mut out, sym.code.len() as u64);
        put_u64(&mut out, index as u64);
        out.extend_from_slice(sym.name.as_bytes());
        out.push(0);
        out.extend_from_slice(sym.code);
    }
    out
}

/// Renders `/tmp/perf-<pid>.map` lines: `ADDR SIZE name`, one per
/// symbol, addresses and sizes in lower-case hex.
pub fn perf_map_lines(syms: &[JitSym<'_>]) -> String {
    let mut out = String::new();
    for sym in syms {
        out.push_str(&format!(
            "{:x} {:x} {}\n",
            sym.addr,
            sym.code.len(),
            sym.name
        ));
    }
    out
}

/// Writes both export files for a live process: `perf-<pid>.map` and
/// `jit-<pid>.dump` under `dir`, using the real pid and a wall-clock
/// timestamp. Returns the two paths (map first).
///
/// # Errors
///
/// Propagates the underlying I/O error message.
pub fn write_perf_files(
    dir: &std::path::Path,
    syms: &[JitSym<'_>],
) -> Result<(std::path::PathBuf, std::path::PathBuf), String> {
    let pid = std::process::id();
    let timestamp = snslp_trace::clock::now_ns();
    let map_path = dir.join(format!("perf-{pid}.map"));
    let dump_path = dir.join(format!("jit-{pid}.dump"));
    std::fs::write(&map_path, perf_map_lines(syms))
        .map_err(|e| format!("write {}: {e}", map_path.display()))?;
    std::fs::write(&dump_path, jitdump_bytes(syms, pid, timestamp))
        .map_err(|e| format!("write {}: {e}", dump_path.display()))?;
    Ok((map_path, dump_path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitdump_header_and_record_layout() {
        let code = [0x90u8, 0xc3];
        let syms = [JitSym {
            name: "k",
            addr: 0x1000,
            code: &code,
        }];
        let bytes = jitdump_bytes(&syms, 0, 0);
        assert_eq!(&bytes[0..4], &JITDUMP_MAGIC.to_le_bytes());
        assert_eq!(&bytes[4..8], &1u32.to_le_bytes());
        assert_eq!(&bytes[8..12], &40u32.to_le_bytes());
        assert_eq!(&bytes[12..16], &62u32.to_le_bytes());
        // Record starts at byte 40.
        assert_eq!(&bytes[40..44], &JIT_CODE_LOAD.to_le_bytes());
        let total = u32::from_le_bytes(bytes[44..48].try_into().unwrap());
        assert_eq!(total as usize, LOAD_FIXED_BYTES + 2 + 2);
        assert_eq!(bytes.len(), 40 + total as usize);
        // code_size field.
        assert_eq!(&bytes[80..88], &2u64.to_le_bytes());
        // Name is NUL-terminated, code follows.
        assert_eq!(&bytes[96..98], b"k\0");
        assert_eq!(&bytes[98..100], &code);
    }

    #[test]
    fn perf_map_is_hex_lines() {
        let syms = [JitSym {
            name: "snslp::axpy1",
            addr: 0xdead_beef,
            code: &[0; 255],
        }];
        assert_eq!(perf_map_lines(&syms), "deadbeef ff snslp::axpy1\n");
    }

    #[test]
    fn deterministic_for_pinned_pid_and_timestamp() {
        let code = [0xc3u8];
        let syms = [JitSym {
            name: "f",
            addr: 0,
            code: &code,
        }];
        assert_eq!(jitdump_bytes(&syms, 0, 0), jitdump_bytes(&syms, 0, 0));
    }
}
