//! Backend differential checking: interpreter vs native JIT.
//!
//! Unlike the interpreter's own [`snslp_interp::check_equivalent`] — which
//! compares an *original* against a *transformed* function and therefore
//! tolerates fast-math reassociation noise — both backends here execute
//! the **same** function, so every observable must agree **bit-exactly**:
//! the returned value's bit pattern, the trap kind, the remaining fuel,
//! and the entire final memory image.

use snslp_cost::CostModel;
use snslp_interp::{run, ArgSpec, ExecOptions, Memory, Value};
use snslp_ir::Function;

use crate::hot::HotProfile;
use crate::lower::LowerOptions;
use crate::JitError;

/// Outcome of a backend differential run that did not diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendDiff {
    /// The JIT declined the function (unsupported construct or platform);
    /// nothing was compared and the interpreter remains authoritative.
    NotCovered {
        /// Why the native backend was not exercised.
        reason: String,
    },
    /// Both backends ran and every observable matched bit-exactly.
    Agreed,
}

/// Materializes `args` exactly as [`snslp_interp::run_with_args`] does:
/// fresh memory, arrays allocated in argument order. Doing it twice with
/// the same specs yields byte-identical layouts, which is what makes the
/// whole-image comparison meaningful. Public so the bench harness can
/// rebuild identical inputs for repeated wall-clock invocations.
pub fn materialize_args(args: &[ArgSpec]) -> (Memory, Vec<Value>) {
    let mut mem = Memory::new();
    let mut values = Vec::with_capacity(args.len());
    for a in args {
        match a {
            ArgSpec::F64Array(d) => values.push(Value::Ptr(mem.alloc_slice_f64(d))),
            ArgSpec::F32Array(d) => values.push(Value::Ptr(mem.alloc_slice_f32(d))),
            ArgSpec::I32Array(d) => values.push(Value::Ptr(mem.alloc_slice_i32(d))),
            ArgSpec::I64Array(d) => values.push(Value::Ptr(mem.alloc_slice_i64(d))),
            ArgSpec::I64(v) => values.push(Value::I64(*v)),
            ArgSpec::I32(v) => values.push(Value::I32(*v)),
            ArgSpec::F64(v) => values.push(Value::F64(*v)),
            ArgSpec::F32(v) => values.push(Value::F32(*v)),
        }
    }
    (mem, values)
}

fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::I32(x), Value::I32(y)) => x == y,
        (Value::I64(x), Value::I64(y)) => x == y,
        (Value::F32(x), Value::F32(y)) => x.to_bits() == y.to_bits(),
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        (Value::Ptr(x), Value::Ptr(y)) => x == y,
        (Value::Vector(x), Value::Vector(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(u, v)| bits_eq(u, v))
        }
        _ => false,
    }
}

fn memories_eq(a: &Memory, b: &Memory) -> Result<(), String> {
    let (sa, sb) = (a.snapshot(), b.snapshot());
    if sa.len() != sb.len() {
        return Err(format!(
            "memory sizes differ: interp {} vs jit {}",
            sa.len(),
            sb.len()
        ));
    }
    if let Some(i) = (0..sa.len()).find(|&i| sa[i] != sb[i]) {
        return Err(format!(
            "memory differs at byte {i:#x}: interp {:#04x} vs jit {:#04x}",
            sa[i], sb[i]
        ));
    }
    Ok(())
}

/// Runs `f` under both backends on identical inputs and compares every
/// observable bit-exactly.
///
/// # Errors
///
/// Returns a description of the first divergence between the two
/// backends. A function the JIT declines is **not** a divergence — that
/// is the documented fallback contract and reports as
/// [`BackendDiff::NotCovered`].
pub fn check_backends(
    f: &Function,
    args: &[ArgSpec],
    model: &CostModel,
    opts: &ExecOptions,
) -> Result<BackendDiff, String> {
    let compiled = match crate::compile(f) {
        Ok(c) => c,
        Err(JitError::Unsupported { reason }) => return Ok(BackendDiff::NotCovered { reason }),
        Err(JitError::Platform(reason)) => return Ok(BackendDiff::NotCovered { reason }),
    };
    let native = match compiled.finalize() {
        Ok(n) => n,
        Err(e) => {
            return Ok(BackendDiff::NotCovered {
                reason: e.to_string(),
            })
        }
    };

    let (mut mem_interp, values) = materialize_args(args);
    let (mut mem_jit, _) = materialize_args(args);

    let interp = run(f, &values, &mut mem_interp, model, opts);
    let jit = native.invoke(&values, &mut mem_jit, opts);

    match (interp, jit) {
        (Ok(ir), Ok(jr)) => {
            match (&ir.ret, &jr.ret) {
                (None, None) => {}
                (Some(x), Some(y)) if bits_eq(x, y) => {}
                (x, y) => {
                    return Err(format!("return values differ: interp {x:?} vs jit {y:?}"));
                }
            }
            let interp_fuel_left = opts.fuel - ir.dyn_insts;
            if interp_fuel_left != jr.fuel_remaining {
                return Err(format!(
                    "fuel accounting differs: interp leaves {interp_fuel_left}, jit leaves {}",
                    jr.fuel_remaining
                ));
            }
            memories_eq(&mem_interp, &mem_jit)?;
            Ok(BackendDiff::Agreed)
        }
        (Err(ei), Err(ej)) => match (ei.as_trap(), ej.as_trap()) {
            (Some(ti), Some(tj)) if ti.kind() == tj.kind() => {
                memories_eq(&mem_interp, &mem_jit)?;
                Ok(BackendDiff::Agreed)
            }
            // Both rejected the inputs / IR before running (e.g. bad
            // argument count): equally failing is agreement.
            (None, None) => Ok(BackendDiff::Agreed),
            _ => Err(format!("errors differ: interp `{ei}` vs jit `{ej}`")),
        },
        (Ok(ir), Err(ej)) => Err(format!(
            "interp returned {:?} but jit failed with `{ej}`",
            ir.ret
        )),
        (Err(ei), Ok(jr)) => Err(format!(
            "interp failed with `{ei}` but jit returned {:?}",
            jr.ret
        )),
    }
}

/// Runs `f` natively in instrumented-hotness mode and checks the exact
/// reconciliation invariant: per-opcode-class native execution counts
/// equal the interpreter's [`DynProfile`](snslp_interp::DynProfile)
/// per-class op counts for the same inputs.
///
/// Returns `Ok(None)` when the invariant is vacuous: the JIT declines
/// the function, the platform has no native execution, or the run traps
/// (a trap aborts mid-block, so block-entry counters legitimately
/// overcount the aborted block's tail; only status-OK activations
/// reconcile exactly).
///
/// # Errors
///
/// Returns a description of the first class whose native and
/// interpreted counts disagree — a lowering that duplicated, dropped,
/// or misclassified an instruction.
pub fn check_hotness(
    f: &Function,
    args: &[ArgSpec],
    model: &CostModel,
    opts: &ExecOptions,
) -> Result<Option<HotProfile>, String> {
    let lopts = LowerOptions {
        instrument: true,
        ..LowerOptions::default()
    };
    let compiled = match crate::compile_with(f, &lopts) {
        Ok(c) => c,
        Err(JitError::Unsupported { .. }) | Err(JitError::Platform(_)) => return Ok(None),
    };
    let native = match compiled.finalize() {
        Ok(n) => n,
        Err(_) => return Ok(None),
    };

    let (mut mem_jit, values) = materialize_args(args);
    let jit = native.invoke(&values, &mut mem_jit, opts);
    let Ok(jr) = jit else {
        return Ok(None);
    };
    let counts = jr
        .block_counts
        .as_deref()
        .ok_or("instrumented invoke returned no block counters")?;
    let prof = HotProfile::from_counts(f.name(), native.pc_map(), counts);

    let (mut mem_interp, values) = materialize_args(args);
    let interp = run(f, &values, &mut mem_interp, model, opts)
        .map_err(|e| format!("interpreter failed where instrumented jit succeeded: {e}"))?;
    prof.reconcile(&interp.profile)
        .map_err(|e| format!("hotness does not reconcile with DynProfile: {e}"))?;
    if prof.total_ops() != interp.dyn_insts {
        return Err(format!(
            "native executed {} ops total, interpreter counted dyn_insts={}",
            prof.total_ops(),
            interp.dyn_insts
        ));
    }
    Ok(Some(prof))
}
