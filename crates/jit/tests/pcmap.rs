//! PC→IR map partition property over every checked-in `.snir` fixture:
//! each function the JIT covers, lowered both plainly and with
//! instrumented-hotness counters, must produce a [`PcMap`] whose
//! instruction and stub ranges cover every emitted code byte exactly
//! once — no gap, no overlap. Vectorized variants additionally carry
//! decision stamps, which the map must keep attached to in-range PCs.
//!
//! This needs no native execution, so it runs on every host.

use std::collections::BTreeMap;
use std::path::PathBuf;

use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_ir::parse_module;
use snslp_jit::{compile_with, JitError, LowerOptions};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../core/tests/snir")
}

fn fixture_modules() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for dir in [fixture_dir(), fixture_dir().join("fuzz")] {
        for entry in std::fs::read_dir(&dir).expect("fixture dir") {
            let path = entry.expect("entry").path();
            if path.extension().is_some_and(|e| e == "snir") {
                let text = std::fs::read_to_string(&path).expect("read fixture");
                out.push((path.display().to_string(), text));
            }
        }
    }
    assert!(out.len() >= 10, "only {} fixtures found", out.len());
    out.sort();
    out
}

/// Lowers `f` in both modes and validates the partition invariant.
/// Returns whether the JIT covered the function.
fn check_partitions(
    what: &str,
    f: &snslp_ir::Function,
    decisions: BTreeMap<u32, snslp_trace::DecisionId>,
) -> bool {
    let mut covered = false;
    for instrument in [false, true] {
        let opts = LowerOptions {
            instrument,
            decisions: decisions.clone(),
        };
        let compiled = match compile_with(f, &opts) {
            Ok(c) => c,
            Err(JitError::Unsupported { .. }) => return false,
            Err(JitError::Platform(e)) => panic!("{what}: platform error: {e}"),
        };
        covered = true;
        compiled
            .pc_map()
            .validate(compiled.code().len())
            .unwrap_or_else(|e| {
                panic!("{what}: pc map partition violated (instrument={instrument}): {e}")
            });
        // Instrumentation changes code size but never the set of IR
        // instructions the map names.
        if instrument {
            assert!(
                compiled.instrumented(),
                "{what}: instrumented lowering lost its counters"
            );
        }
    }
    covered
}

#[test]
fn pcmap_partitions_every_fixture_exactly() {
    let mut covered = 0usize;
    let mut declined = 0usize;
    for (what, text) in fixture_modules() {
        let module = match parse_module(&text) {
            Ok(m) => m,
            // A handful of fixtures exercise parser diagnostics.
            Err(_) => continue,
        };
        for f in module.functions() {
            // Plain (scalar) variant: no decisions to stamp.
            if check_partitions(&format!("{what}/@{}", f.name()), f, BTreeMap::new()) {
                covered += 1;
            } else {
                declined += 1;
            }

            // Vectorized variant: SN-SLP's emitted instructions carry
            // decision stamps through the lowering.
            let mut v = f.clone();
            let report = run_slp(&mut v, &SlpConfig::new(SlpMode::SnSlp));
            let mut decisions = BTreeMap::new();
            for g in &report.graphs {
                if g.vectorized {
                    for &inst in &g.emitted {
                        decisions.insert(inst, g.decision.clone());
                    }
                }
            }
            check_partitions(&format!("{what}/@{} (snslp)", v.name()), &v, decisions);
        }
    }
    assert!(
        covered > declined,
        "JIT coverage regressed: {covered} covered vs {declined} declined"
    );
}
