//! Whole-registry backend differential: every Table I kernel, under
//! every pipeline (`o3`, `slp`, `lslp`, `snslp`), must execute
//! identically under the interpreter and the native x86-64 JIT — return
//! bits, fuel, and the entire final memory image. This is the tier-1
//! equality gate behind `--backend=jit`: the CI `jit-smoke` job runs
//! exactly this test.
//!
//! On hosts without the native backend the differential reports
//! `NotCovered` and the test degrades to checking that the fallback
//! contract holds (no divergence is ever reported).

use snslp_core::{optimize_o3, run_slp, SlpConfig, SlpMode};
use snslp_cost::CostModel;
use snslp_interp::ExecOptions;
use snslp_jit::{check_backends, native_supported, BackendDiff};

const DYN_MODES: [Option<SlpMode>; 4] = [
    None,
    Some(SlpMode::Slp),
    Some(SlpMode::Lslp),
    Some(SlpMode::SnSlp),
];

fn label(mode: Option<SlpMode>) -> &'static str {
    match mode {
        None => "o3",
        Some(m) => m.label(),
    }
}

#[test]
fn every_kernel_agrees_under_every_pipeline() {
    let model = CostModel::default();
    let opts = ExecOptions::default();
    let kernels = snslp_kernels::registry();
    assert!(kernels.len() >= 12, "registry shrank to {}", kernels.len());
    let mut agreed = 0usize;
    for kernel in &kernels {
        // Modest iteration count: the differential compares whole memory
        // images, and loop-carried behavior shows up within a few trips.
        let iters = kernel.default_iters.min(32);
        let args = kernel.args(iters);
        for &mode in &DYN_MODES {
            let mut f = kernel.build();
            match mode {
                None => {
                    optimize_o3(&mut f);
                }
                Some(m) => {
                    run_slp(&mut f, &SlpConfig::new(m));
                }
            }
            let diff = check_backends(&f, &args, &model, &opts)
                .unwrap_or_else(|d| panic!("{} [{}] diverged: {d}", kernel.name, label(mode)));
            match diff {
                BackendDiff::Agreed => agreed += 1,
                BackendDiff::NotCovered { reason } => {
                    // On a native host every registry kernel must be
                    // JIT-covered — a regression in lowering coverage is
                    // an error, not a silent fallback.
                    assert!(
                        !native_supported(),
                        "{} [{}] fell back on a native host: {reason}",
                        kernel.name,
                        label(mode)
                    );
                }
            }
        }
    }
    if native_supported() {
        assert_eq!(agreed, kernels.len() * DYN_MODES.len());
    }
}
