//! Exact hotness reconciliation over the whole kernel registry: every
//! Table I kernel, compiled under `slp`, `lslp`, and `snslp` (plus the
//! scalar `o3` baseline), must produce instrumented native per-class
//! execution counts that equal the interpreter's `DynProfile` — the
//! invariant [`check_hotness`] enforces. This is the tier the CI
//! `hot-smoke` job drives through `bench_check hot`.
//!
//! On hosts without the native backend every row reports `None` and the
//! test degrades to checking that the skip contract holds.

use snslp_core::{optimize_o3, run_slp, SlpConfig, SlpMode};
use snslp_cost::CostModel;
use snslp_interp::ExecOptions;
use snslp_jit::{check_hotness, native_supported};

const DYN_MODES: [Option<SlpMode>; 4] = [
    None,
    Some(SlpMode::Slp),
    Some(SlpMode::Lslp),
    Some(SlpMode::SnSlp),
];

fn label(mode: Option<SlpMode>) -> &'static str {
    match mode {
        None => "o3",
        Some(m) => m.label(),
    }
}

#[test]
fn every_kernel_reconciles_under_every_pipeline() {
    let model = CostModel::default();
    let opts = ExecOptions::default();
    let kernels = snslp_kernels::registry();
    assert!(kernels.len() >= 12, "registry shrank to {}", kernels.len());
    let mut reconciled = 0usize;
    for kernel in &kernels {
        let iters = kernel.default_iters.min(32);
        let args = kernel.args(iters);
        for &mode in &DYN_MODES {
            let mut f = kernel.build();
            match mode {
                None => {
                    optimize_o3(&mut f);
                }
                Some(m) => {
                    run_slp(&mut f, &SlpConfig::new(m));
                }
            }
            let prof = check_hotness(&f, &args, &model, &opts)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", kernel.name, label(mode)));
            match prof {
                Some(prof) => {
                    reconciled += 1;
                    assert!(
                        prof.total_ops() > 0,
                        "{} [{}] executed nothing",
                        kernel.name,
                        label(mode)
                    );
                }
                None => assert!(
                    !native_supported(),
                    "{} [{}] fell back on a native host",
                    kernel.name,
                    label(mode)
                ),
            }
        }
    }
    if native_supported() {
        assert_eq!(reconciled, kernels.len() * DYN_MODES.len());
    }
}
