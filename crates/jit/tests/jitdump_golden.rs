//! Golden `jitdump` listings: the JIT's textual lowering dump for two
//! representative kernels under plain SLP and SN-SLP must stay
//! byte-identical to the checked-in files. The dump carries opcode
//! mnemonics, stack-slot assignments and emitted byte counts but no
//! addresses, so it is stable across runs, hosts and ASLR — any diff is
//! a real change to instruction selection and belongs in review.
//!
//! Regenerate after an intentional codegen change with:
//!
//! ```text
//! BLESS=1 cargo test -p snslp-jit --test jitdump_golden
//! ```
//!
//! `compile` is pure lowering (no executable mapping), so these tests
//! run on every platform, not just x86-64 Linux.

use std::path::PathBuf;

use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_jit::compile;
use snslp_kernels::kernel_by_name;

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(file)
}

fn check(kernel: &str, mode: SlpMode, label: &str) {
    let k = kernel_by_name(kernel).expect("registry kernel");
    let mut f = k.build();
    run_slp(&mut f, &SlpConfig::new(mode));
    let dump = compile(&f)
        .unwrap_or_else(|e| panic!("{kernel} [{label}] must lower: {e}"))
        .dump()
        .to_string();
    let path = golden_path(&format!("{kernel}_{label}.jitdump"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &dump).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with BLESS=1 cargo test -p snslp-jit",
            path.display()
        )
    });
    assert_eq!(
        dump,
        want,
        "jitdump for {kernel} [{label}] drifted from {}",
        path.display()
    );
}

#[test]
fn motiv_leaf_slp_dump_is_stable() {
    check("motiv_leaf", SlpMode::Slp, "slp");
}

#[test]
fn motiv_leaf_snslp_dump_is_stable() {
    check("motiv_leaf", SlpMode::SnSlp, "snslp");
}

#[test]
fn povray_shade_slp_dump_is_stable() {
    check("povray_shade", SlpMode::Slp, "slp");
}

#[test]
fn povray_shade_snslp_dump_is_stable() {
    check("povray_shade", SlpMode::SnSlp, "snslp");
}
