//! Golden `jitdump` listings: the JIT's textual lowering dump for two
//! representative kernels under plain SLP and SN-SLP must stay
//! byte-identical to the checked-in files. The dump carries opcode
//! mnemonics, stack-slot assignments and emitted byte counts but no
//! addresses, so it is stable across runs, hosts and ASLR — any diff is
//! a real change to instruction selection and belongs in review.
//!
//! Regenerate after an intentional codegen change with:
//!
//! ```text
//! BLESS=1 cargo test -p snslp-jit --test jitdump_golden
//! ```
//!
//! `compile` is pure lowering (no executable mapping), so these tests
//! run on every platform, not just x86-64 Linux.

use std::fmt::Write as _;
use std::path::PathBuf;

use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_jit::compile;
use snslp_jit::perf::{jitdump_bytes, JitSym};
use snslp_kernels::kernel_by_name;

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(file)
}

fn check(kernel: &str, mode: SlpMode, label: &str) {
    let k = kernel_by_name(kernel).expect("registry kernel");
    let mut f = k.build();
    run_slp(&mut f, &SlpConfig::new(mode));
    let dump = compile(&f)
        .unwrap_or_else(|e| panic!("{kernel} [{label}] must lower: {e}"))
        .dump()
        .to_string();
    let path = golden_path(&format!("{kernel}_{label}.jitdump"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &dump).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with BLESS=1 cargo test -p snslp-jit",
            path.display()
        )
    });
    assert_eq!(
        dump,
        want,
        "jitdump for {kernel} [{label}] drifted from {}",
        path.display()
    );
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// Walks a binary jitdump and renders its structure: header fields,
/// then each record's file offset, sizes, index and symbol name. Code
/// addresses are pinned to cumulative byte offsets before rendering, so
/// the listing never contains a runtime address and stays stable under
/// ASLR — any diff is a real change to record layout or code size.
fn render_jitdump_structure(bytes: &[u8]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "header magic={:#010x} version={} size={} elf_mach={} pid={} timestamp={} flags={}",
        read_u32(bytes, 0),
        read_u32(bytes, 4),
        read_u32(bytes, 8),
        read_u32(bytes, 12),
        read_u32(bytes, 20),
        read_u64(bytes, 24),
        read_u64(bytes, 32),
    );
    let mut at = read_u32(bytes, 8) as usize;
    while at < bytes.len() {
        let total = read_u32(bytes, at + 4) as usize;
        let code_size = read_u64(bytes, at + 40);
        let code_index = read_u64(bytes, at + 48);
        let name_at = at + 56;
        let name_end = bytes[name_at..].iter().position(|&b| b == 0).unwrap() + name_at;
        let name = std::str::from_utf8(&bytes[name_at..name_end]).unwrap();
        let _ = writeln!(
            out,
            "record@{at} kind={} total={total} vma={:#x} code_size={code_size} \
             index={code_index} name={name}",
            read_u32(bytes, at),
            read_u64(bytes, at + 24),
        );
        at += total;
    }
    assert_eq!(at, bytes.len(), "records must tile the file exactly");
    out
}

#[test]
fn jitdump_file_structure_is_stable() {
    // Both Table I goldens' kernels under SN-SLP, laid out back to back
    // at offset 0 as a pinned-address stand-in for the runtime mapping.
    let mut compiled = Vec::new();
    for kernel in ["motiv_leaf", "povray_shade"] {
        let mut f = kernel_by_name(kernel).expect("registry kernel").build();
        run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
        let c = compile(&f).unwrap_or_else(|e| panic!("{kernel} must lower: {e}"));
        compiled.push((format!("snslp::{kernel}"), c));
    }
    let mut offset = 0u64;
    let mut syms = Vec::new();
    for (name, c) in &compiled {
        syms.push(JitSym {
            name,
            addr: offset,
            code: c.code(),
        });
        offset += c.code().len() as u64;
    }
    let listing = render_jitdump_structure(&jitdump_bytes(&syms, 0, 0));

    let path = golden_path("perf_jitdump.structure");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &listing).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with BLESS=1 cargo test -p snslp-jit",
            path.display()
        )
    });
    assert_eq!(
        listing,
        want,
        "jitdump structure drifted from {}",
        path.display()
    );
}

#[test]
fn motiv_leaf_slp_dump_is_stable() {
    check("motiv_leaf", SlpMode::Slp, "slp");
}

#[test]
fn motiv_leaf_snslp_dump_is_stable() {
    check("motiv_leaf", SlpMode::SnSlp, "snslp");
}

#[test]
fn povray_shade_slp_dump_is_stable() {
    check("povray_shade", SlpMode::Slp, "slp");
}

#[test]
fn povray_shade_snslp_dump_is_stable() {
    check("povray_shade", SlpMode::SnSlp, "snslp");
}
