//! End-to-end tests of horizontal-reduction vectorization (the paper's
//! `-slp-vectorize-hor` seeds, §II-B).

use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_cost::{CostModel, TargetDesc};
use snslp_interp::{check_equivalent, ArgSpec};
use snslp_ir::{Function, FunctionBuilder, InstId, Param, ScalarType, Type};

/// `out[0] = Σ src[0..k]` as a straight-line left chain of adds.
fn sum_chain(k: usize, fast_math: bool) -> Function {
    let mut fb = FunctionBuilder::new(
        "sum",
        vec![Param::noalias_ptr("out"), Param::noalias_ptr("src")],
        Type::Void,
    );
    fb.set_fast_math(fast_math);
    let out = fb.func().param(0);
    let src = fb.func().param(1);
    let mut acc = fb.load(ScalarType::F64, src);
    for i in 1..k {
        let p = fb.ptradd_const(src, 8 * i as i64);
        let v = fb.load(ScalarType::F64, p);
        acc = fb.add(acc, v);
    }
    fb.store(out, acc);
    fb.ret(None);
    fb.finish()
}

/// `out[0] = Σ a[0..k]·b[0..k]` — a dot product (muls feed the tree).
fn dot_chain(k: usize) -> Function {
    let mut fb = FunctionBuilder::new(
        "dot",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("a"),
            Param::noalias_ptr("b"),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let out = fb.func().param(0);
    let a = fb.func().param(1);
    let b = fb.func().param(2);
    let mut terms: Vec<InstId> = Vec::new();
    for i in 0..k {
        let pa = fb.ptradd_const(a, 8 * i as i64);
        let pb = fb.ptradd_const(b, 8 * i as i64);
        let x = fb.load(ScalarType::F64, pa);
        let y = fb.load(ScalarType::F64, pb);
        terms.push(fb.mul(x, y));
    }
    let mut acc = terms[0];
    for &t in &terms[1..] {
        acc = fb.add(acc, t);
    }
    fb.store(out, acc);
    fb.ret(None);
    fb.finish()
}

fn args_sum(k: usize) -> Vec<ArgSpec> {
    vec![
        ArgSpec::F64Array(vec![0.0]),
        ArgSpec::F64Array((0..k).map(|i| 0.25 * i as f64 - 3.0).collect()),
    ]
}

#[test]
fn sum_reduction_vectorizes_and_matches() {
    for k in [4, 8, 10, 16] {
        let orig = sum_chain(k, true);
        let mut f = sum_chain(k, true);
        let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp).with_verification());
        assert_eq!(report.vectorized_graphs(), 1, "k={k}\n{f}");
        // The vector code uses a horizontal shuffle reduce.
        let has_shuffle = f
            .block_ids()
            .flat_map(|b| f.block(b).insts().to_vec())
            .any(|i| matches!(f.kind(i), snslp_ir::InstKind::Shuffle { .. }));
        assert!(has_shuffle, "k={k}\n{f}");
        check_equivalent(&orig, &f, &args_sum(k), &CostModel::default())
            .unwrap_or_else(|e| panic!("k={k}: {e}"));
    }
}

#[test]
fn dot_product_reduction_vectorizes_loads_and_muls() {
    let orig = dot_chain(8);
    let mut f = dot_chain(8);
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::Slp).with_verification());
    assert_eq!(report.vectorized_graphs(), 1, "{f}");
    // No scalar multiplies remain.
    let scalar_muls = f
        .block_ids()
        .flat_map(|b| f.block(b).insts().to_vec())
        .filter(|&i| {
            matches!(
                f.kind(i),
                snslp_ir::InstKind::Binary {
                    op: snslp_ir::BinOp::Mul,
                    ..
                }
            ) && f.ty(i).as_scalar().is_some()
        })
        .count();
    assert_eq!(scalar_muls, 0, "{f}");
    let args = vec![
        ArgSpec::F64Array(vec![0.0]),
        ArgSpec::F64Array((0..8).map(|i| i as f64).collect()),
        ArgSpec::F64Array((0..8).map(|i| 2.0 - i as f64).collect()),
    ];
    let (out, _) = check_equivalent(&orig, &f, &args, &CostModel::default()).unwrap();
    let expect: f64 = (0..8).map(|i| i as f64 * (2.0 - i as f64)).sum();
    match &out.arrays[0] {
        snslp_interp::ArrayData::F64(v) => assert!((v[0] - expect).abs() < 1e-9),
        other => panic!("wrong array type {other:?}"),
    }
}

#[test]
fn reduction_speeds_up_execution() {
    let orig = dot_chain(16);
    let mut f = dot_chain(16);
    run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
    let args = vec![
        ArgSpec::F64Array(vec![0.0]),
        ArgSpec::F64Array((0..16).map(|i| i as f64 * 0.5).collect()),
        ArgSpec::F64Array((0..16).map(|i| 1.0 / (1.0 + i as f64)).collect()),
    ];
    let (s, v) = check_equivalent(&orig, &f, &args, &CostModel::default()).unwrap();
    assert!(
        v.exec.cycles < s.exec.cycles,
        "vectorized {} !< scalar {}",
        v.exec.cycles,
        s.exec.cycles
    );
}

#[test]
fn float_reduction_needs_fast_math() {
    let mut f = sum_chain(8, false);
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp).with_verification());
    assert_eq!(report.vectorized_graphs(), 0, "{f}");
}

#[test]
fn leftover_leaves_handled() {
    // k = 10 with VF 2 → 5 full groups; k = 11 → leftover of 1.
    for k in [11, 13] {
        let orig = sum_chain(k, true);
        let mut f = sum_chain(k, true);
        let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp).with_verification());
        assert_eq!(report.vectorized_graphs(), 1, "k={k}");
        check_equivalent(&orig, &f, &args_sum(k), &CostModel::default())
            .unwrap_or_else(|e| panic!("k={k}: {e}"));
    }
}

#[test]
fn avx2_reduces_at_width_four() {
    let model = CostModel::new(TargetDesc::avx2_like());
    let orig = sum_chain(16, true);
    let mut f = sum_chain(16, true);
    let cfg = SlpConfig::new(SlpMode::SnSlp)
        .with_model(model.clone())
        .with_verification();
    let report = run_slp(&mut f, &cfg);
    assert_eq!(report.vectorized_graphs(), 1);
    // f64 at 256 bits → width 4 groups.
    assert!(report.graphs.iter().any(|g| g.width == 4), "{report:?}");
    check_equivalent(&orig, &f, &args_sum(16), &model).unwrap();
}

#[test]
fn reductions_can_be_disabled() {
    let mut f = sum_chain(8, true);
    let mut cfg = SlpConfig::new(SlpMode::SnSlp);
    cfg.enable_reductions = false;
    let report = run_slp(&mut f, &cfg);
    assert_eq!(report.vectorized_graphs(), 0);
}

#[test]
fn integer_min_reduction_works_without_fast_math() {
    let mut fb = FunctionBuilder::new(
        "m",
        vec![Param::noalias_ptr("out"), Param::noalias_ptr("src")],
        Type::Void,
    );
    let out = fb.func().param(0);
    let src = fb.func().param(1);
    let mut acc = fb.load(ScalarType::I64, src);
    for i in 1..8 {
        let p = fb.ptradd_const(src, 8 * i as i64);
        let v = fb.load(ScalarType::I64, p);
        acc = fb.binary(snslp_ir::BinOp::Min, acc, v);
    }
    fb.store(out, acc);
    fb.ret(None);
    let orig = fb.finish();
    let mut f = orig.clone();
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp).with_verification());
    assert_eq!(report.vectorized_graphs(), 1, "{f}");
    let args = vec![
        ArgSpec::I64Array(vec![0]),
        ArgSpec::I64Array(vec![5, -3, 9, 0, 7, -3, 12, 4]),
    ];
    let (out, _) = check_equivalent(&orig, &f, &args, &CostModel::default()).unwrap();
    assert_eq!(out.arrays[0], snslp_interp::ArrayData::I64(vec![-3]));
}
