//! A FileCheck-style harness over `.snir` fixtures: each file under
//! `tests/snir/` is parsed, compiled under the modes its directives name,
//! and checked against the expectations embedded in its comments.
//!
//! Directives (in `;`-comments anywhere in the file):
//!
//! ```text
//! ; RUN: slp lslp snslp            — modes to compile under
//! ; CHECK[snslp]: vectorized=1     — number of vectorized graphs
//! ; CHECK[snslp]: supernodes=2     — aggregate Super-Node size
//! ; CHECK[snslp]: contains=f64x2   — substring of the output IR
//! ; CHECK[lslp]:  not-contains=f64x2
//! ```
//!
//! Every compiled output is additionally verified and — when the fixture
//! has a `; INPUTS:` line of typed arrays — differentially executed
//! against the scalar original.

use std::collections::HashMap;
use std::path::PathBuf;

use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_cost::CostModel;
use snslp_interp::{check_equivalent, ArgSpec};
use snslp_ir::parse_function_str;

#[derive(Debug, Clone, PartialEq)]
enum Check {
    Vectorized(usize),
    Supernodes(u64),
    Contains(String),
    NotContains(String),
}

#[derive(Debug, Default)]
struct Fixture {
    runs: Vec<SlpMode>,
    checks: HashMap<&'static str, Vec<Check>>,
    inputs: Vec<ArgSpec>,
}

fn mode_of(name: &str) -> SlpMode {
    match name {
        "slp" => SlpMode::Slp,
        "lslp" => SlpMode::Lslp,
        "snslp" => SlpMode::SnSlp,
        other => panic!("unknown mode `{other}` in fixture"),
    }
}

fn mode_key(m: SlpMode) -> &'static str {
    match m {
        SlpMode::Slp => "slp",
        SlpMode::Lslp => "lslp",
        SlpMode::SnSlp => "snslp",
    }
}

fn parse_fixture(text: &str) -> Fixture {
    let mut fx = Fixture::default();
    for line in text.lines() {
        let Some(comment) = line.trim().strip_prefix(';') else {
            continue;
        };
        let comment = comment.trim();
        if let Some(modes) = comment.strip_prefix("RUN:") {
            fx.runs = modes.split_whitespace().map(mode_of).collect();
        } else if let Some(rest) = comment.strip_prefix("CHECK[") {
            let (mode, check) = rest.split_once("]:").expect("CHECK[mode]: …");
            let key = mode_key(mode_of(mode.trim()));
            let check = check.trim();
            let parsed = if let Some(n) = check.strip_prefix("vectorized=") {
                Check::Vectorized(n.trim().parse().unwrap())
            } else if let Some(n) = check.strip_prefix("supernodes=") {
                Check::Supernodes(n.trim().parse().unwrap())
            } else if let Some(s) = check.strip_prefix("contains=") {
                Check::Contains(s.to_string())
            } else if let Some(s) = check.strip_prefix("not-contains=") {
                Check::NotContains(s.to_string())
            } else {
                panic!("unknown CHECK directive `{check}`");
            };
            fx.checks.entry(key).or_default().push(parsed);
        } else if let Some(spec) = comment.strip_prefix("INPUTS:") {
            fx.inputs = snslp_interp::parse_inputs_line(spec)
                .unwrap_or_else(|e| panic!("bad INPUTS line: {e}"));
        }
    }
    assert!(!fx.runs.is_empty(), "fixture has no RUN line");
    fx
}

fn run_fixture(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).expect("fixture readable");
    let fx = parse_fixture(&text);
    let name = path.file_name().unwrap().to_string_lossy();
    let orig = parse_function_str(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
    snslp_ir::verify(&orig).unwrap_or_else(|e| panic!("{name}: invalid fixture IR: {e}"));

    for &mode in &fx.runs {
        let mut f = orig.clone();
        let report = run_slp(&mut f, &SlpConfig::new(mode).with_verification());
        let out = f.to_string();
        for check in fx.checks.get(mode_key(mode)).into_iter().flatten() {
            match check {
                Check::Vectorized(n) => assert_eq!(
                    report.vectorized_graphs(),
                    *n,
                    "{name} [{mode:?}]: vectorized graphs\n{out}"
                ),
                Check::Supernodes(n) => assert_eq!(
                    report.aggregate_super_node_size(),
                    *n,
                    "{name} [{mode:?}]: aggregate Super-Node size\n{out}"
                ),
                Check::Contains(s) => {
                    assert!(out.contains(s), "{name} [{mode:?}]: missing `{s}`\n{out}")
                }
                Check::NotContains(s) => {
                    assert!(!out.contains(s), "{name} [{mode:?}]: found `{s}`\n{out}")
                }
            }
        }
        if !fx.inputs.is_empty() {
            check_equivalent(&orig, &f, &fx.inputs, &CostModel::default())
                .unwrap_or_else(|e| panic!("{name} [{mode:?}]: behaviour changed: {e}"));
        }
    }
}

fn collect_snir(dir: &std::path::Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("{dir:?}: {e}")) {
        let path = entry.unwrap().path();
        if path.is_dir() {
            collect_snir(&path, out);
        } else if path.extension().map(|e| e == "snir").unwrap_or(false) {
            out.push(path);
        }
    }
}

#[test]
fn all_snir_fixtures() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snir");
    let mut paths = Vec::new();
    collect_snir(&dir, &mut paths);
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures found in {dir:?}");
    for p in paths {
        run_fixture(&p);
    }
}
