//! The parallel module driver must be observably identical to a serial
//! run: same rewritten IR, same reports in module order, and the same
//! trace record stream (captured per worker and replayed in function
//! order — never interleaved).
//!
//! This file holds a single `#[test]` because it flips the global trace
//! facet mask; keeping it alone in its own integration binary (its own
//! process) means no other test can observe the change.

use snslp_core::{run_slp_module_with_threads, FunctionReport, SlpConfig, SlpMode};
use snslp_ir::{FunctionBuilder, InstId, Module, Param, ScalarType, Type};
use snslp_trace::{Facet, RecordCapture};

/// The paper's Fig. 2 kernel (vectorizable under SN-SLP only), with a
/// per-function constant twist so every function's IR and remarks are
/// distinguishable in the trace stream.
fn fig2_like(name: &str, twist: i64) -> snslp_ir::Function {
    let mut fb = FunctionBuilder::new(
        name,
        vec![
            Param::noalias_ptr("a"),
            Param::noalias_ptr("b"),
            Param::noalias_ptr("c"),
            Param::noalias_ptr("d"),
        ],
        Type::Void,
    );
    let a = fb.func().param(0);
    let b = fb.func().param(1);
    let c = fb.func().param(2);
    let d = fb.func().param(3);
    let ld = |p: InstId, k: i64, fb: &mut FunctionBuilder| {
        let q = fb.ptradd_const(p, 8 * k);
        fb.load(ScalarType::I64, q)
    };
    // Lane 0: (B[0] - C[0]) + D[1 + twist]
    let b0 = ld(b, 0, &mut fb);
    let c0 = ld(c, 0, &mut fb);
    let d1 = ld(d, 1 + twist, &mut fb);
    let t0 = fb.sub(b0, c0);
    let r0 = fb.add(t0, d1);
    fb.store(a, r0);
    // Lane 1: (D[2 + twist] - C[1]) + B[1]  (commuted operand order)
    let d2 = ld(d, 2 + twist, &mut fb);
    let c1 = ld(c, 1, &mut fb);
    let b1 = ld(b, 1, &mut fb);
    let t1 = fb.sub(d2, c1);
    let r1 = fb.add(t1, b1);
    let a1 = fb.ptradd_const(a, 8);
    fb.store(a1, r1);
    fb.ret(None);
    fb.finish()
}

/// A function with nothing to vectorize (scattered strides).
fn scalar_only(name: &str) -> snslp_ir::Function {
    let mut fb = FunctionBuilder::new(
        name,
        vec![Param::noalias_ptr("out"), Param::noalias_ptr("x")],
        Type::Void,
    );
    let out = fb.func().param(0);
    let x = fb.func().param(1);
    for k in 0..2i64 {
        let p = fb.ptradd_const(x, 40 * k);
        let v = fb.load(ScalarType::I64, p);
        let w = fb.add(v, v);
        let q = fb.ptradd_const(out, 8 * k);
        fb.store(q, w);
    }
    fb.ret(None);
    fb.finish()
}

fn module() -> Module {
    let mut m = Module::new("par_det");
    for i in 0..4 {
        m.add_function(fig2_like(&format!("vec{i}"), i));
        m.add_function(scalar_only(&format!("sca{i}")));
    }
    m
}

/// Everything about a report that a deterministic driver must reproduce
/// (wall-clock `elapsed` and stage timings are inherently run-specific
/// and excluded).
fn fingerprint(r: &FunctionReport) -> String {
    use std::fmt::Write;
    let mut s = format!("@{} mode={:?} graphs={:?}", r.function, r.mode, r.graphs);
    for remark in &r.remarks {
        let _ = write!(s, "\n  {}", remark.machine());
    }
    s
}

#[test]
fn parallel_run_is_byte_identical_to_serial() {
    // Remarks only: metric records carry wall times, which legitimately
    // differ run to run.
    let old = snslp_trace::set_facets(Facet::Remarks as u32);

    let mut serial = module();
    let cap = RecordCapture::begin();
    let serial_reports =
        run_slp_module_with_threads(&mut serial, &SlpConfig::new(SlpMode::SnSlp), 1);
    let serial_records = cap.finish();

    let mut parallel = module();
    let cap = RecordCapture::begin();
    let parallel_reports =
        run_slp_module_with_threads(&mut parallel, &SlpConfig::new(SlpMode::SnSlp), 4);
    let parallel_records = cap.finish();

    snslp_trace::set_facets(old);

    // The rewritten module is byte-identical.
    assert_eq!(serial.to_string(), parallel.to_string());

    // Reports come back in module order with identical contents.
    let serial_fp: Vec<_> = serial_reports.iter().map(fingerprint).collect();
    let parallel_fp: Vec<_> = parallel_reports.iter().map(fingerprint).collect();
    assert_eq!(serial_fp, parallel_fp);
    let names: Vec<_> = parallel_reports
        .iter()
        .map(|r| r.function.as_str())
        .collect();
    assert_eq!(
        names,
        ["vec0", "sca0", "vec1", "sca1", "vec2", "sca2", "vec3", "sca3"]
    );
    // The work actually happened: every fig2-like function vectorized.
    assert_eq!(
        parallel_reports
            .iter()
            .map(FunctionReport::vectorized_graphs)
            .sum::<usize>(),
        4
    );

    // The replayed trace stream is byte-identical to the serial stream.
    let serial_text: Vec<_> = serial_records.iter().map(|r| r.render_text()).collect();
    let parallel_text: Vec<_> = parallel_records.iter().map(|r| r.render_text()).collect();
    assert_eq!(serial_text, parallel_text);
    assert!(
        !serial_text.is_empty(),
        "remark records should have been captured"
    );
}
