//! Golden-file tests for the optimization-remark stream.
//!
//! Each `.snir` fixture is compiled under SN-SLP while the `remarks`
//! trace facet is captured; the rendered record lines must match the
//! checked-in golden file byte for byte. Regenerate after an intentional
//! change with:
//!
//! ```text
//! SNSLP_BLESS=1 cargo test -p snslp-core --test remarks_golden
//! ```

use std::path::PathBuf;

use snslp_core::{run_slp, FunctionReport, SlpConfig, SlpMode};
use snslp_ir::parse_function_str;
use snslp_trace::{Counter, Facet};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snir")
        .join(format!("{name}.snir"))
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.remarks"))
}

/// Compares `actual` against the golden file for `name` (or rewrites it
/// under `SNSLP_BLESS=1`).
fn compare_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("SNSLP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with SNSLP_BLESS=1"));
    assert_eq!(
        actual, expected,
        "remark stream for `{name}` diverged from {path:?}; \
         rerun with SNSLP_BLESS=1 if intentional"
    );
}

/// Runs SN-SLP over a fixture, capturing the remark stream, and checks it
/// against the golden file. Returns the report for extra assertions.
fn check_golden(name: &str) -> FunctionReport {
    check_golden_with(name, &SlpConfig::new(SlpMode::SnSlp))
}

/// [`check_golden`] under an explicit pass configuration (fixtures whose
/// interesting remark only fires on a non-default target or tuning).
fn check_golden_with(name: &str, cfg: &SlpConfig) -> FunctionReport {
    let src = std::fs::read_to_string(fixture_path(name)).expect("fixture exists");
    let mut f = parse_function_str(&src).expect("fixture parses");
    let mut report = None;
    let lines = snslp_trace::capture(Facet::Remarks as u32, || {
        report = Some(run_slp(&mut f, cfg));
    });
    let report = report.unwrap();

    // The emitted stream and the remarks retained on the report are the
    // same records.
    assert_eq!(
        lines.len(),
        report.remarks.len(),
        "one sink record per report remark"
    );
    assert_eq!(
        report.metrics.get(Counter::RemarksEmitted),
        report.remarks.len() as u64,
    );

    compare_golden(name, &(lines.join("\n") + "\n"));
    report
}

#[test]
fn fig3_trunk_reorder_remarks() {
    let report = check_golden("fig3_trunk_reorder");
    let r = &report.remarks[0];
    assert!(r.vectorized);
    assert_eq!(r.reason, snslp_trace::ReasonCode::Profitable);
    assert_eq!(r.cost, Some(-6));

    // Metrics registry agrees with the per-graph stats: this fixture
    // vectorizes on the first (SN-SLP) attempt, so the counters match the
    // chosen graphs exactly — and both kinds of reordering moves fired.
    let stat_leaf: usize = report.graphs.iter().map(|g| g.leaf_moves).sum();
    let stat_trunk: usize = report.graphs.iter().map(|g| g.trunk_assisted_moves).sum();
    assert!(stat_leaf > 0 && stat_trunk > 0, "{:?}", report.graphs);
    assert_eq!(report.metrics.get(Counter::LeafMoves), stat_leaf as u64);
    assert_eq!(
        report.metrics.get(Counter::TrunkAssistedMoves),
        stat_trunk as u64
    );
    assert_eq!(report.metrics.get(Counter::GraphsVectorized), 1);
    assert!(report.metrics.get(Counter::SeedsCollected) >= 1);
}

#[test]
fn muldiv_supernode_remarks() {
    let report = check_golden("muldiv_supernode");
    assert!(
        report.remarks.iter().any(|r| r.vectorized),
        "{:#?}",
        report.remarks
    );
    assert_eq!(
        report.metrics.get(Counter::GraphsVectorized),
        report.vectorized_graphs() as u64
    );
}

#[test]
fn aliasing_blocks_vectorization_remarks() {
    let report = check_golden("aliasing_blocks_vectorization");
    let r = &report.remarks[0];
    assert!(!r.vectorized);
    assert_eq!(r.reason, snslp_trace::ReasonCode::Aliasing);
    assert_eq!(report.metrics.get(Counter::GraphsVectorized), 0);
}

#[test]
fn cost_param_stores_remarks() {
    let report = check_golden("cost_param_stores");
    let r = &report.remarks[0];
    assert!(!r.vectorized);
    assert_eq!(r.reason, snslp_trace::ReasonCode::Cost);
}

#[test]
fn unsupported_extract_stores_remarks() {
    let report = check_golden("unsupported_extract_stores");
    let r = &report.remarks[0];
    assert!(!r.vectorized);
    assert_eq!(r.reason, snslp_trace::ReasonCode::UnsupportedOpcode);
}

#[test]
fn nonconsecutive_gap_loads_remarks() {
    let report = check_golden("nonconsecutive_gap_loads");
    let r = &report.remarks[0];
    assert!(!r.vectorized);
    assert_eq!(r.reason, snslp_trace::ReasonCode::NonConsecutive);
}

#[test]
fn too_narrow_reduction_remarks() {
    // Only interesting on the 256-bit target: the 5-leaf f32 tree is
    // narrower than the 8-lane vector factor there.
    let cfg = SlpConfig::new(SlpMode::SnSlp).with_model(snslp_cost::CostModel::new(
        snslp_cost::TargetDesc::avx2_like(),
    ));
    let report = check_golden_with("too_narrow_reduction", &cfg);
    let r = &report.remarks[0];
    assert!(!r.vectorized);
    assert_eq!(r.reason, snslp_trace::ReasonCode::TooNarrow);
}

#[test]
fn scheduling_failure_remark_renders() {
    // The pass defends against scheduling cycles before costing (lane
    // cross-dependence and in-span aliasing both gather), so the codegen
    // cycle check is a backstop no fixture IR reaches. The golden for
    // this reason code therefore renders an explicitly-constructed
    // remark through the same sink path the pass uses.
    let remark = snslp_trace::Remark {
        pass: "snslp".to_string(),
        function: "@synthetic".to_string(),
        block: "entry".to_string(),
        site: "%t9".to_string(),
        inst: 9,
        decision: snslp_trace::DecisionId::new("synthetic", "entry", 0, 9),
        seed_kind: "store".to_string(),
        width: 2,
        vectorized: false,
        reason: snslp_trace::ReasonCode::SchedulingFailure,
        cost: Some(-2),
        detail: "SchedulingCycle".to_string(),
    };
    let lines = snslp_trace::capture(Facet::Remarks as u32, || remark.emit());
    compare_golden("scheduling_failure_synthetic", &(lines.join("\n") + "\n"));
}

#[test]
fn cost_misprediction_remark_renders() {
    // Cost-misprediction remarks are emitted by the dynamic calibration
    // layer in `snslp-bench` (predicted vs achieved savings joined per
    // kernel), not by the pass over IR, so the golden for this reason
    // code renders a representatively-constructed remark through the
    // same sink path the calibration uses.
    let remark = snslp_trace::Remark {
        pass: "snslp".to_string(),
        function: "@milc_su3".to_string(),
        block: "-".to_string(),
        site: "-".to_string(),
        inst: 0,
        decision: snslp_trace::DecisionId::new("milc_su3", "-", 0, 0),
        seed_kind: "calibration".to_string(),
        width: 2,
        vectorized: true,
        reason: snslp_trace::ReasonCode::CostMisprediction,
        cost: Some(-7),
        detail: "achieved=1.2/iter ratio=0.17".to_string(),
    };
    let lines = snslp_trace::capture(Facet::Remarks as u32, || remark.emit());
    compare_golden("cost_misprediction_synthetic", &(lines.join("\n") + "\n"));
}

#[test]
fn jit_fallback_remark_renders() {
    // JIT-fallback remarks are emitted by `snslp-jit::compile` when the
    // native backend declines a function (unsupported opcode, oversized
    // frame) and the interpreter result stands. The jit crate sits above
    // this one, so the golden renders a remark with exactly the shape
    // `snslp_jit::fallback_remark` constructs through the same sink.
    let remark = snslp_trace::Remark {
        pass: "jit".to_string(),
        function: "@cast_heavy".to_string(),
        block: "entry".to_string(),
        site: "%0".to_string(),
        inst: 0,
        decision: snslp_trace::DecisionId::new("cast_heavy", "entry", 0, 0),
        seed_kind: "function".to_string(),
        width: 0,
        vectorized: false,
        reason: snslp_trace::ReasonCode::JitFallback,
        cost: None,
        detail: "cast fptosi is not lowered".to_string(),
    };
    let lines = snslp_trace::capture(Facet::Remarks as u32, || remark.emit());
    compare_golden("jit_fallback_synthetic", &(lines.join("\n") + "\n"));
}

#[test]
fn every_reason_code_appears_in_a_golden_stream() {
    // Exhaustiveness: each ReasonCode must be exercised by at least one
    // checked-in golden remark stream, so a renderer or classifier change
    // to any code is caught byte-for-byte by some fixture.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut corpus = String::new();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().map(|e| e == "remarks").unwrap_or(false) {
            corpus.push_str(&std::fs::read_to_string(&path).unwrap());
        }
    }
    for code in snslp_trace::ReasonCode::ALL {
        let needle = format!("reason={}", code.code());
        assert!(
            corpus.contains(&needle),
            "no golden remark stream in {dir:?} contains `{needle}`; \
             add a fixture (or bless the existing ones) covering it"
        );
    }
}

#[test]
fn remarks_silent_when_facet_disabled() {
    let src = std::fs::read_to_string(fixture_path("fig3_trunk_reorder")).unwrap();
    let mut f = parse_function_str(&src).unwrap();
    let mut report = None;
    let lines = snslp_trace::capture(0, || {
        report = Some(run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp)));
    });
    assert!(lines.is_empty(), "no facet, no records: {lines:?}");
    // ... but the report still carries the remarks and metrics.
    let report = report.unwrap();
    assert!(!report.remarks.is_empty());
    assert!(report.metrics.get(Counter::BundlesAttempted) > 0);
}
