//! One full-stream golden: every sink-visible trace facet (events,
//! remarks, metrics, DOT artifacts) captured over a single fixture
//! compilation under the deterministic virtual clock, compared byte for
//! byte. The Prof facet does not emit sink records — its byte-stable
//! golden lives in the trace crate's `tests/prof.rs` (Chrome JSON).
//!
//! The virtual clock is process-global, so this binary holds exactly one
//! test. Regenerate with:
//!
//! ```text
//! SNSLP_BLESS=1 cargo test -p snslp-core --test stream_golden
//! ```

use std::path::PathBuf;

use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_ir::parse_function_str;
use snslp_trace::Facet;

const ALL_SINK_FACETS: u32 =
    Facet::Events as u32 | Facet::Remarks as u32 | Facet::Metrics as u32 | Facet::Dot as u32;

fn compile_stream(src: &str) -> Vec<String> {
    // Reset the virtual timeline so both runs (and every blessing
    // machine) see identical timestamps.
    snslp_trace::clock::set_virtual(true);
    let mut f = parse_function_str(src).expect("fixture parses");
    let lines = snslp_trace::capture(ALL_SINK_FACETS, || {
        run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
    });
    snslp_trace::clock::set_virtual(false);
    lines
}

#[test]
fn full_stream_golden() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(root.join("tests/snir/fig3_trunk_reorder.snir")).unwrap();

    let lines = compile_stream(&src);
    // Deterministic: an identical second compilation yields identical
    // bytes, timestamps included.
    assert_eq!(compile_stream(&src), lines);

    // Every sink record kind appears: the stream exercises all four
    // stream facets at once.
    for marker in [
        "] event ",
        "] remark ",
        "] metric ",
        "] artifact ",
        "] span-end ",
    ] {
        assert!(
            lines.iter().any(|l| l.contains(marker)),
            "no `{marker}` record in the captured stream:\n{}",
            lines.join("\n")
        );
    }

    let actual = lines.join("\n") + "\n";
    let path = root.join("tests/golden/fig3_trunk_reorder.stream");
    if std::env::var_os("SNSLP_BLESS").is_some() {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with SNSLP_BLESS=1"));
    assert_eq!(
        actual, expected,
        "trace stream diverged from {path:?}; rerun with SNSLP_BLESS=1 if intentional"
    );
}
