//! Vector cast bundles: conversions vectorize lane-wise and compose with
//! Super-Nodes (e.g. integer samples converted to float then combined in
//! an add/sub chain — the 482.sphinx3 front-end shape).

use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_cost::CostModel;
use snslp_interp::{check_equivalent, ArgSpec};
use snslp_ir::{CastKind, Function, FunctionBuilder, InstKind, Param, ScalarType, Type};

/// `out[i] = float(s[i]) * 0.5` over 4 unrolled f32 lanes.
fn convert_scale() -> Function {
    let mut fb = FunctionBuilder::new(
        "cvt",
        vec![Param::noalias_ptr("out"), Param::noalias_ptr("s")],
        Type::Void,
    );
    let out = fb.func().param(0);
    let s = fb.func().param(1);
    for k in 0..4i64 {
        let ps = fb.ptradd_const(s, 4 * k);
        let po = fb.ptradd_const(out, 4 * k);
        let x = fb.load(ScalarType::I32, ps);
        let xf = fb.cast(CastKind::Sitofp, ScalarType::F32, x);
        let half = fb.const_f32(0.5);
        let r = fb.mul(xf, half);
        fb.store(po, r);
    }
    fb.ret(None);
    fb.finish()
}

#[test]
fn cast_bundles_vectorize() {
    let orig = convert_scale();
    let mut f = convert_scale();
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::Slp).with_verification());
    assert_eq!(report.vectorized_graphs(), 1, "{f}");
    // A vector sitofp exists.
    let has_vec_cast = f
        .block_ids()
        .flat_map(|b| f.block(b).insts().to_vec())
        .any(|i| {
            matches!(
                f.kind(i),
                InstKind::Cast {
                    kind: CastKind::Sitofp,
                    ..
                }
            ) && f.ty(i).as_vector().is_some()
        });
    assert!(has_vec_cast, "{f}");

    let args = vec![
        ArgSpec::F32Array(vec![0.0; 4]),
        ArgSpec::I32Array(vec![2, -4, 6, 100]),
    ];
    let (out, _) = check_equivalent(&orig, &f, &args, &CostModel::default()).unwrap();
    assert_eq!(
        out.arrays[0],
        snslp_interp::ArrayData::F32(vec![1.0, -2.0, 3.0, 50.0])
    );
}

#[test]
fn casts_feed_super_nodes() {
    // out[k] = float(s[k]) − m[k] + b[k], term order permuted per lane.
    let build = || {
        let mut fb = FunctionBuilder::new(
            "cep",
            vec![
                Param::noalias_ptr("out"),
                Param::noalias_ptr("s"),
                Param::noalias_ptr("m"),
                Param::noalias_ptr("b"),
            ],
            Type::Void,
        );
        fb.set_fast_math(true);
        let out = fb.func().param(0);
        let s = fb.func().param(1);
        let m = fb.func().param(2);
        let b = fb.func().param(3);
        for k in 0..2i64 {
            let ps = fb.ptradd_const(s, 4 * k);
            let pm = fb.ptradd_const(m, 4 * k);
            let pb = fb.ptradd_const(b, 4 * k);
            let po = fb.ptradd_const(out, 4 * k);
            let xi = fb.load(ScalarType::I32, ps);
            let xf = fb.cast(CastKind::Sitofp, ScalarType::F32, xi);
            let mv = fb.load(ScalarType::F32, pm);
            let bv = fb.load(ScalarType::F32, pb);
            let r = if k == 0 {
                let t = fb.sub(xf, mv);
                fb.add(t, bv)
            } else {
                let t = fb.add(bv, xf);
                fb.sub(t, mv)
            };
            fb.store(po, r);
        }
        fb.ret(None);
        fb.finish()
    };
    let orig = build();
    let mut f = build();
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp).with_verification());
    assert_eq!(report.vectorized_graphs(), 1, "{f}");
    assert!(report.aggregate_super_node_size() >= 2);

    let args = vec![
        ArgSpec::F32Array(vec![0.0; 2]),
        ArgSpec::I32Array(vec![100, 200]),
        ArgSpec::F32Array(vec![0.25, 0.75]),
        ArgSpec::F32Array(vec![10.0, 20.0]),
    ];
    let (out, _) = check_equivalent(&orig, &f, &args, &CostModel::default()).unwrap();
    assert_eq!(
        out.arrays[0],
        snslp_interp::ArrayData::F32(vec![109.75, 219.25])
    );
}

#[test]
fn mixed_cast_kinds_gather() {
    // Lane 0 sitofp, lane 1 fpext — not isomorphic.
    let mut fb = FunctionBuilder::new(
        "mix",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("s"),
            Param::noalias_ptr("t"),
        ],
        Type::Void,
    );
    let out = fb.func().param(0);
    let s = fb.func().param(1);
    let t = fb.func().param(2);
    let x = fb.load(ScalarType::I32, s);
    let a = fb.cast(CastKind::Sitofp, ScalarType::F64, x);
    let y = fb.load(ScalarType::F32, t);
    let b = fb.cast(CastKind::Fpext, ScalarType::F64, y);
    fb.store(out, a);
    let po = fb.ptradd_const(out, 8);
    fb.store(po, b);
    fb.ret(None);
    let orig = fb.finish();
    let mut f = orig.clone();
    run_slp(&mut f, &SlpConfig::new(SlpMode::Slp).with_verification());
    let args = vec![
        ArgSpec::F64Array(vec![0.0; 2]),
        ArgSpec::I32Array(vec![7]),
        ArgSpec::F32Array(vec![2.5]),
    ];
    let (out, _) = check_equivalent(&orig, &f, &args, &CostModel::default()).unwrap();
    assert_eq!(out.arrays[0], snslp_interp::ArrayData::F64(vec![7.0, 2.5]));
}

#[test]
fn cast_text_round_trips() {
    let f = convert_scale();
    let text = f.to_string();
    assert!(text.contains("cast sitofp f32"));
    let f2 = snslp_ir::parse_function_str(&text).unwrap();
    snslp_ir::verify(&f2).unwrap();
    assert_eq!(f2.num_linked_insts(), f.num_linked_insts());
}

#[test]
fn invalid_casts_rejected_by_verifier() {
    let mut fb = FunctionBuilder::new("bad", vec![Param::noalias_ptr("p")], Type::Void);
    let p = fb.func().param(0);
    let x = fb.load(ScalarType::F64, p);
    // fpext from f64 is invalid (must be f32 → f64).
    let bad = fb.cast(CastKind::Fpext, ScalarType::F64, x);
    fb.store(p, bad);
    fb.ret(None);
    let f = fb.finish();
    let err = snslp_ir::verify(&f).unwrap_err();
    assert!(err.to_string().contains("cast fpext invalid"));
}
