//! Vector compare + select bundles: clamp/max patterns vectorize into a
//! vector `cmp` (i32 mask) feeding a lane-wise `select`.

use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_cost::CostModel;
use snslp_interp::{check_equivalent, ArgSpec};
use snslp_ir::{CmpPred, Function, FunctionBuilder, InstKind, Param, ScalarType, Type};

/// `out[i] = max(a[i], b[i])` via cmp+select, two unrolled lanes.
fn max_kernel() -> Function {
    let mut fb = FunctionBuilder::new(
        "vmax",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("a"),
            Param::noalias_ptr("b"),
        ],
        Type::Void,
    );
    let out = fb.func().param(0);
    let a = fb.func().param(1);
    let b = fb.func().param(2);
    for k in 0..2i64 {
        let pa = fb.ptradd_const(a, 8 * k);
        let pb = fb.ptradd_const(b, 8 * k);
        let po = fb.ptradd_const(out, 8 * k);
        let x = fb.load(ScalarType::I64, pa);
        let y = fb.load(ScalarType::I64, pb);
        let c = fb.cmp(CmpPred::Gt, x, y);
        let m = fb.select(c, x, y);
        fb.store(po, m);
    }
    fb.ret(None);
    fb.finish()
}

/// `out[i] = a[i] < 0 ? 0 : a[i]` (ReLU-style clamp) with a shared zero.
fn relu_kernel() -> Function {
    let mut fb = FunctionBuilder::new(
        "relu",
        vec![Param::noalias_ptr("out"), Param::noalias_ptr("a")],
        Type::Void,
    );
    let out = fb.func().param(0);
    let a = fb.func().param(1);
    for k in 0..2i64 {
        let pa = fb.ptradd_const(a, 8 * k);
        let po = fb.ptradd_const(out, 8 * k);
        let x = fb.load(ScalarType::I64, pa);
        let zero = fb.const_i64(0);
        let c = fb.cmp(CmpPred::Lt, x, zero);
        let m = fb.select(c, zero, x);
        fb.store(po, m);
    }
    fb.ret(None);
    fb.finish()
}

#[test]
fn max_pattern_vectorizes() {
    let orig = max_kernel();
    let mut f = max_kernel();
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::Slp).with_verification());
    assert_eq!(report.vectorized_graphs(), 1, "{f}");
    // Vector cmp and vector select present.
    let insts: Vec<_> = f
        .block_ids()
        .flat_map(|b| f.block(b).insts().to_vec())
        .collect();
    assert!(insts
        .iter()
        .any(|&i| matches!(f.kind(i), InstKind::Cmp { .. }) && f.ty(i).as_vector().is_some()));
    assert!(insts
        .iter()
        .any(|&i| matches!(f.kind(i), InstKind::Select { .. }) && f.ty(i).as_vector().is_some()));

    let args = vec![
        ArgSpec::I64Array(vec![0, 0]),
        ArgSpec::I64Array(vec![5, -7]),
        ArgSpec::I64Array(vec![3, 12]),
    ];
    let (out, _) = check_equivalent(&orig, &f, &args, &CostModel::default()).unwrap();
    assert_eq!(out.arrays[0], snslp_interp::ArrayData::I64(vec![5, 12]));
}

#[test]
fn relu_pattern_vectorizes_with_constant_mask_arm() {
    let orig = relu_kernel();
    let mut f = relu_kernel();
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::Slp).with_verification());
    assert_eq!(report.vectorized_graphs(), 1, "{f}");
    let args = vec![
        ArgSpec::I64Array(vec![0, 0]),
        ArgSpec::I64Array(vec![-4, 9]),
    ];
    let (out, _) = check_equivalent(&orig, &f, &args, &CostModel::default()).unwrap();
    assert_eq!(out.arrays[0], snslp_interp::ArrayData::I64(vec![0, 9]));
}

#[test]
fn mixed_predicates_gather() {
    // One lane uses Gt, the other Lt — the cmp bundle cannot vectorize,
    // and the whole graph should stay scalar (cost not beaten).
    let mut fb = FunctionBuilder::new(
        "mixed",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("a"),
            Param::noalias_ptr("b"),
        ],
        Type::Void,
    );
    let out = fb.func().param(0);
    let a = fb.func().param(1);
    let b = fb.func().param(2);
    for k in 0..2i64 {
        let pa = fb.ptradd_const(a, 8 * k);
        let pb = fb.ptradd_const(b, 8 * k);
        let po = fb.ptradd_const(out, 8 * k);
        let x = fb.load(ScalarType::I64, pa);
        let y = fb.load(ScalarType::I64, pb);
        let c = if k == 0 {
            fb.cmp(CmpPred::Gt, x, y)
        } else {
            fb.cmp(CmpPred::Lt, x, y)
        };
        let m = fb.select(c, x, y);
        fb.store(po, m);
    }
    fb.ret(None);
    let orig = fb.finish();
    let mut f = orig.clone();
    run_slp(&mut f, &SlpConfig::new(SlpMode::Slp).with_verification());
    // Whatever happened, semantics hold (min on lane 1!).
    let args = vec![
        ArgSpec::I64Array(vec![0, 0]),
        ArgSpec::I64Array(vec![5, -7]),
        ArgSpec::I64Array(vec![3, 12]),
    ];
    let (out, _) = check_equivalent(&orig, &f, &args, &CostModel::default()).unwrap();
    assert_eq!(out.arrays[0], snslp_interp::ArrayData::I64(vec![5, -7]));
}

#[test]
fn float_clamp_under_snslp_stays_correct() {
    // cmp/select feeding an add/sub Super-Node.
    let build = || {
        let mut fb = FunctionBuilder::new(
            "clamped",
            vec![
                Param::noalias_ptr("out"),
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::noalias_ptr("c"),
            ],
            Type::Void,
        );
        fb.set_fast_math(true);
        let out = fb.func().param(0);
        let a = fb.func().param(1);
        let b = fb.func().param(2);
        let c = fb.func().param(3);
        for k in 0..2i64 {
            let pa = fb.ptradd_const(a, 8 * k);
            let pb = fb.ptradd_const(b, 8 * k);
            let pc = fb.ptradd_const(c, 8 * k);
            let po = fb.ptradd_const(out, 8 * k);
            let x = fb.load(ScalarType::F64, pa);
            let y = fb.load(ScalarType::F64, pb);
            let z = fb.load(ScalarType::F64, pc);
            let cond = fb.cmp(CmpPred::Gt, x, y);
            let m = fb.select(cond, x, y);
            // lane 0: m - y + z ; lane 1: m + z - y
            let r = if k == 0 {
                let t = fb.sub(m, y);
                fb.add(t, z)
            } else {
                let t = fb.add(m, z);
                fb.sub(t, y)
            };
            fb.store(po, r);
        }
        fb.ret(None);
        fb.finish()
    };
    let orig = build();
    let mut f = build();
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp).with_verification());
    assert_eq!(report.vectorized_graphs(), 1, "{f}");
    assert!(report.aggregate_super_node_size() >= 2);
    let args = vec![
        ArgSpec::F64Array(vec![0.0, 0.0]),
        ArgSpec::F64Array(vec![1.5, -2.0]),
        ArgSpec::F64Array(vec![0.5, 4.0]),
        ArgSpec::F64Array(vec![10.0, 20.0]),
    ];
    check_equivalent(&orig, &f, &args, &CostModel::default()).unwrap();
}
