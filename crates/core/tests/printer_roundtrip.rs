//! Printer ↔ parser round-trip over every checked-in `.snir` fixture.
//!
//! Each fixture is parsed, printed, and re-parsed; the printed normal
//! form must be a fixpoint (printing the re-parse reproduces it exactly)
//! and must still verify. The *first* print of a freshly parsed function
//! is the normal form by construction — the parser numbers values
//! densely in textual order — so one parse⇄print cycle must already be
//! stable. This guards both directions: a printer that emits something
//! the parser rejects, and a parser that loses information the printer
//! would surface.

use std::path::PathBuf;

use snslp_ir::{parse_function_str, verify};

fn collect_snir(dir: &std::path::Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("{dir:?}: {e}")) {
        let path = entry.unwrap().path();
        if path.is_dir() {
            collect_snir(&path, out);
        } else if path.extension().map(|e| e == "snir").unwrap_or(false) {
            out.push(path);
        }
    }
}

#[test]
fn every_fixture_round_trips() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snir");
    let mut paths = Vec::new();
    collect_snir(&dir, &mut paths);
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures found in {dir:?}");

    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let f = parse_function_str(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        verify(&f).unwrap_or_else(|e| panic!("{name}: fixture does not verify: {e}"));

        let printed = f.to_string();
        let re = parse_function_str(&printed)
            .unwrap_or_else(|e| panic!("{name}: printed form does not re-parse: {e}\n{printed}"));
        verify(&re).unwrap_or_else(|e| panic!("{name}: re-parse does not verify: {e}"));
        let reprinted = re.to_string();
        assert_eq!(
            printed, reprinted,
            "{name}: printed form is not a parse⇄print fixpoint"
        );
    }
}
