//! Tests of the width-halving retry: when a wide seed bundle is not
//! profitable, the pass retries the narrower half (and the remaining
//! stores re-enter the worklist as their own group).

use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_cost::CostModel;
use snslp_interp::{check_equivalent, ArgSpec};
use snslp_ir::{Function, FunctionBuilder, Param, ScalarType, Type};

/// Four adjacent f32 stores where only the first two lanes are
/// isomorphic: lanes 0/1 store `x + y`, lanes 2/3 store unrelated
/// non-adjacent loads, so the width-4 bundle gathers everything but the
/// width-2 prefix vectorizes cleanly.
fn half_isomorphic() -> Function {
    let mut fb = FunctionBuilder::new(
        "half",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("a"),
            Param::noalias_ptr("b"),
        ],
        Type::Void,
    );
    let out = fb.func().param(0);
    let a = fb.func().param(1);
    let b = fb.func().param(2);
    let at = |fb: &mut FunctionBuilder, base, k: i64| {
        let p = fb.ptradd_const(base, 4 * k);
        fb.load(ScalarType::F32, p)
    };
    // Lanes 0, 1: isomorphic adds over adjacent loads.
    let r0 = {
        let (x, y) = (at(&mut fb, a, 0), at(&mut fb, b, 0));
        fb.add(x, y)
    };
    let r1 = {
        let (x, y) = (at(&mut fb, a, 1), at(&mut fb, b, 1));
        fb.add(x, y)
    };
    // Lanes 2, 3: scattered loads (stride 5), nothing to vectorize.
    let r2 = at(&mut fb, a, 10);
    let r3 = at(&mut fb, b, 15);
    for (k, r) in [r0, r1, r2, r3].into_iter().enumerate() {
        let p = fb.ptradd_const(out, 4 * k as i64);
        fb.store(p, r);
    }
    fb.ret(None);
    fb.finish()
}

#[test]
fn narrow_retry_recovers_the_isomorphic_half() {
    let orig = half_isomorphic();
    let mut f = half_isomorphic();
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::Slp).with_verification());
    assert!(
        report.graphs.iter().any(|g| g.vectorized && g.width == 2),
        "the width-2 prefix should vectorize: {report:?}\n{f}"
    );
    // And it stays correct.
    let args = vec![
        ArgSpec::F32Array(vec![0.0; 4]),
        ArgSpec::F32Array((0..16).map(|i| i as f32).collect()),
        ArgSpec::F32Array((0..16).map(|i| 0.5 * i as f32).collect()),
    ];
    check_equivalent(&orig, &f, &args, &CostModel::default()).unwrap();
}

#[test]
fn fully_isomorphic_four_wide_is_not_split() {
    // Control: when all four lanes are isomorphic the wide bundle wins.
    let mut fb = FunctionBuilder::new(
        "full",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("a"),
            Param::noalias_ptr("b"),
        ],
        Type::Void,
    );
    let out = fb.func().param(0);
    let a = fb.func().param(1);
    let b = fb.func().param(2);
    for k in 0..4i64 {
        let pa = fb.ptradd_const(a, 4 * k);
        let pb = fb.ptradd_const(b, 4 * k);
        let po = fb.ptradd_const(out, 4 * k);
        let x = fb.load(ScalarType::F32, pa);
        let y = fb.load(ScalarType::F32, pb);
        let s = fb.add(x, y);
        fb.store(po, s);
    }
    fb.ret(None);
    let mut f = fb.finish();
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::Slp).with_verification());
    assert_eq!(report.vectorized_graphs(), 1);
    assert_eq!(report.graphs[0].width, 4, "{report:?}");
}
