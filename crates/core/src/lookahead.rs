//! The look-ahead operand-scoring heuristic of LSLP, reused by SN-SLP's
//! `build_group` (paper §IV-C4, Listing 3 line ~30).
//!
//! Given two candidate scalar values that would occupy the same operand
//! position of adjacent lanes, the score estimates how profitable it is to
//! pack them together, recursively peeking `depth` levels into their
//! use-def subtrees.

use std::cell::Cell;

use snslp_ir::analysis::{is_consecutive, MemLoc};
use snslp_ir::{Function, InstId, InstKind};

use crate::score_cache::LruScoreCache;

thread_local! {
    /// Set while a [`score_pair_with`] invocation is on the stack, so the
    /// profiler span covers only the outermost request of each recursion.
    static IN_SCORE: Cell<bool> = const { Cell::new(false) };
}

/// RAII pair: the profiler span for a top-level score request plus the
/// recursion flag reset. `None` when profiling is off or when already
/// inside a score recursion.
struct TopScoreSpan {
    _span: snslp_trace::ProfSpan,
}

impl Drop for TopScoreSpan {
    fn drop(&mut self) {
        IN_SCORE.with(|c| c.set(false));
    }
}

fn top_level_score_span() -> Option<TopScoreSpan> {
    if !snslp_trace::prof::profiling() || IN_SCORE.with(|c| c.replace(true)) {
        return None;
    }
    Some(TopScoreSpan {
        _span: snslp_trace::ProfSpan::enter("lookahead.score_pair"),
    })
}

/// Score constants, mirroring LLVM's `LookAheadHeuristics`.
pub mod score {
    /// Identical values (splat candidates).
    pub const SPLAT: i32 = 5;
    /// Loads from adjacent addresses, in lane order.
    pub const CONSECUTIVE_LOADS: i32 = 4;
    /// Loads from adjacent addresses, reversed.
    pub const REVERSED_LOADS: i32 = 3;
    /// Same non-load opcode.
    pub const SAME_OPCODE: i32 = 3;
    /// Both constants (any values).
    pub const CONSTANTS: i32 = 2;
    /// Loads from the same base but not adjacent.
    pub const SAME_BASE_LOADS: i32 = 2;
    /// Values of the same kind that cannot be packed cheaply.
    pub const GENERIC: i32 = 1;
    /// Nothing in common.
    pub const FAIL: i32 = 0;
}

/// Scores packing `a` (lane *i*) with `b` (lane *i+1*), looking `depth`
/// levels down the use-def chains. Uncached: every call (including the
/// recursive ones) recomputes from the IR. The pass pipeline uses
/// [`score_pair_with`]; this entry point is the reference baseline the
/// property tests compare the memoized path against.
pub fn score_pair(f: &Function, a: InstId, b: InstId, depth: u32) -> i32 {
    score_pair_with(f, None, a, b, depth)
}

/// Memoizing variant of [`score_pair`]. Every request — top-level or
/// recursive — counts one `LookaheadScoreEvals` plus exactly one of
/// `LookaheadCacheHits`/`LookaheadCacheMisses` when a cache is supplied
/// (the fuzz oracle checks `hits + misses == evals` over a pass run), and
/// computed scores are memoized at every recursion level.
pub fn score_pair_with(
    f: &Function,
    cache: Option<&LruScoreCache>,
    a: InstId,
    b: InstId,
    depth: u32,
) -> i32 {
    // Profile top-level score requests only: recursive calls re-enter this
    // function, and one span per recursion step would swamp the trace.
    let _p = top_level_score_span();
    snslp_trace::bump(snslp_trace::Counter::LookaheadScoreEvals);
    match cache {
        Some(c) => {
            if let Some(s) = c.get(a, b, depth) {
                snslp_trace::bump(snslp_trace::Counter::LookaheadCacheHits);
                return s;
            }
            snslp_trace::bump(snslp_trace::Counter::LookaheadCacheMisses);
            let s = compute_score_pair(f, cache, a, b, depth);
            c.insert(a, b, depth, s);
            s
        }
        None => compute_score_pair(f, None, a, b, depth),
    }
}

fn compute_score_pair(
    f: &Function,
    cache: Option<&LruScoreCache>,
    a: InstId,
    b: InstId,
    depth: u32,
) -> i32 {
    if a == b {
        return score::SPLAT;
    }
    let (ka, kb) = (f.kind(a), f.kind(b));
    match (ka, kb) {
        (InstKind::Load { .. }, InstKind::Load { .. }) => {
            if f.ty(a) != f.ty(b) {
                return score::FAIL;
            }
            let (la, lb) = (
                MemLoc::of_inst(f, a).expect("load"),
                MemLoc::of_inst(f, b).expect("load"),
            );
            if is_consecutive(f, &la, &lb) {
                score::CONSECUTIVE_LOADS
            } else if is_consecutive(f, &lb, &la) {
                score::REVERSED_LOADS
            } else if la.addr.root == lb.addr.root {
                score::SAME_BASE_LOADS
            } else {
                score::GENERIC
            }
        }
        (InstKind::Const(_), InstKind::Const(_)) => score::CONSTANTS,
        (InstKind::Binary { op: opa, .. }, InstKind::Binary { op: opb, .. }) => {
            if f.ty(a) != f.ty(b) {
                return score::FAIL;
            }
            if opa != opb {
                return score::GENERIC;
            }
            let mut s = score::SAME_OPCODE;
            if depth > 0 {
                s += best_operand_match(f, cache, a, b, depth - 1);
            }
            s
        }
        (InstKind::Unary { op: opa, .. }, InstKind::Unary { op: opb, .. }) => {
            if opa != opb || f.ty(a) != f.ty(b) {
                return score::GENERIC;
            }
            let mut s = score::SAME_OPCODE;
            if depth > 0 {
                s += best_operand_match(f, cache, a, b, depth - 1);
            }
            s
        }
        _ => {
            if std::mem::discriminant(ka) == std::mem::discriminant(kb) {
                score::GENERIC
            } else {
                score::FAIL
            }
        }
    }
}

/// Sum of the best pairwise operand scores of two same-opcode
/// instructions, trying the swapped pairing too when the op commutes.
fn best_operand_match(
    f: &Function,
    cache: Option<&LruScoreCache>,
    a: InstId,
    b: InstId,
    depth: u32,
) -> i32 {
    let oa = f.kind(a).operands();
    let ob = f.kind(b).operands();
    if oa.len() != ob.len() || oa.is_empty() {
        return 0;
    }
    let straight: i32 = oa
        .iter()
        .zip(&ob)
        .map(|(&x, &y)| score_pair_with(f, cache, x, y, depth))
        .sum();
    let commutes = match f.kind(a) {
        InstKind::Binary { op, .. } => op.is_commutative(),
        _ => false,
    };
    if commutes && oa.len() == 2 {
        let crossed = score_pair_with(f, cache, oa[0], ob[1], depth)
            + score_pair_with(f, cache, oa[1], ob[0], depth);
        straight.max(crossed)
    } else {
        straight
    }
}

/// Total score of a whole candidate group: the sum of adjacent-lane pair
/// scores (paper Listing 2, line 14). Uncached reference entry point,
/// like [`score_pair`].
pub fn score_group(f: &Function, group: &[InstId], depth: u32) -> i32 {
    score_group_with(f, None, group, depth)
}

/// Memoizing variant of [`score_group`].
pub fn score_group_with(
    f: &Function,
    cache: Option<&LruScoreCache>,
    group: &[InstId],
    depth: u32,
) -> i32 {
    group
        .windows(2)
        .map(|w| score_pair_with(f, cache, w[0], w[1], depth))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};

    /// b[0], b[1], c[0], const, const — plus adds over them.
    struct Fixture {
        f: Function,
        b0: InstId,
        b1: InstId,
        c0: InstId,
        k1: InstId,
        k2: InstId,
        add_bb: InstId,
        add_bc: InstId,
    }

    fn fixture() -> Fixture {
        let mut fb = FunctionBuilder::new(
            "t",
            vec![Param::noalias_ptr("b"), Param::noalias_ptr("c")],
            Type::Void,
        );
        let b = fb.func().param(0);
        let c = fb.func().param(1);
        let b0 = fb.load(ScalarType::F64, b);
        let pb1 = fb.ptradd_const(b, 8);
        let b1 = fb.load(ScalarType::F64, pb1);
        let c0 = fb.load(ScalarType::F64, c);
        let k1 = fb.const_f64(1.0);
        let k2 = fb.const_f64(2.0);
        let add_bb = fb.add(b0, b1);
        let add_bc = fb.add(b0, c0);
        let s = fb.add(add_bb, add_bc);
        let t = fb.add(k1, k2);
        let u = fb.add(s, t);
        fb.store(b, u);
        fb.ret(None);
        Fixture {
            f: fb.finish(),
            b0,
            b1,
            c0,
            k1,
            k2,
            add_bb,
            add_bc,
        }
    }

    #[test]
    fn consecutive_loads_beat_everything() {
        let fx = fixture();
        let s_consec = score_pair(&fx.f, fx.b0, fx.b1, 2);
        let s_rev = score_pair(&fx.f, fx.b1, fx.b0, 2);
        let s_diff = score_pair(&fx.f, fx.b0, fx.c0, 2);
        assert_eq!(s_consec, score::CONSECUTIVE_LOADS);
        assert_eq!(s_rev, score::REVERSED_LOADS);
        assert_eq!(s_diff, score::GENERIC);
        assert!(s_consec > s_rev && s_rev > s_diff);
    }

    #[test]
    fn splat_scores_highest() {
        let fx = fixture();
        assert_eq!(score_pair(&fx.f, fx.b0, fx.b0, 2), score::SPLAT);
    }

    #[test]
    fn constants_pack() {
        let fx = fixture();
        assert_eq!(score_pair(&fx.f, fx.k1, fx.k2, 2), score::CONSTANTS);
    }

    #[test]
    fn lookahead_sees_through_adds() {
        let fx = fixture();
        // add(b0,b1) vs add(b0,c0): same opcode + recursive operand match.
        let s = score_pair(&fx.f, fx.add_bb, fx.add_bc, 2);
        assert!(s > score::SAME_OPCODE, "recursion adds operand score: {s}");
        // Depth 0 sees only the opcode.
        let s0 = score_pair(&fx.f, fx.add_bb, fx.add_bc, 0);
        assert_eq!(s0, score::SAME_OPCODE);
    }

    #[test]
    fn mismatched_kinds_fail() {
        let fx = fixture();
        assert_eq!(score_pair(&fx.f, fx.b0, fx.k1, 2), score::FAIL);
    }

    #[test]
    fn group_score_sums_adjacent_pairs() {
        let fx = fixture();
        let g = score_group(&fx.f, &[fx.b0, fx.b1, fx.c0], 2);
        assert_eq!(
            g,
            score_pair(&fx.f, fx.b0, fx.b1, 2) + score_pair(&fx.f, fx.b1, fx.c0, 2)
        );
    }

    #[test]
    fn cached_scores_match_uncached() {
        let fx = fixture();
        let cache = LruScoreCache::default();
        let all = [fx.b0, fx.b1, fx.c0, fx.k1, fx.k2, fx.add_bb, fx.add_bc];
        for depth in 0..4 {
            for &a in &all {
                for &b in &all {
                    let plain = score_pair(&fx.f, a, b, depth);
                    // Twice: first fills the cache, second hits it.
                    assert_eq!(score_pair_with(&fx.f, Some(&cache), a, b, depth), plain);
                    assert_eq!(score_pair_with(&fx.f, Some(&cache), a, b, depth), plain);
                }
            }
        }
        assert_eq!(
            score_group(&fx.f, &all, 3),
            score_group_with(&fx.f, Some(&cache), &all, 3)
        );
    }

    #[test]
    fn cache_accounting_covers_every_eval() {
        use snslp_trace::{Counter, MetricsSnapshot};
        let fx = fixture();
        let cache = LruScoreCache::default();
        let before = MetricsSnapshot::current();
        score_pair_with(&fx.f, Some(&cache), fx.add_bb, fx.add_bc, 3);
        // Re-scoring the same pair and a group over it must be all hits.
        score_pair_with(&fx.f, Some(&cache), fx.add_bb, fx.add_bc, 3);
        score_group_with(&fx.f, Some(&cache), &[fx.add_bb, fx.add_bc], 3);
        let d = MetricsSnapshot::current().delta_since(&before);
        let evals = d.get(Counter::LookaheadScoreEvals);
        let hits = d.get(Counter::LookaheadCacheHits);
        let misses = d.get(Counter::LookaheadCacheMisses);
        assert!(evals > 0);
        assert_eq!(hits + misses, evals, "every request is a hit or a miss");
        assert!(hits > 0, "repeated subtree scoring must hit the cache");
    }
}
