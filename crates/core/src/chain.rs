//! Trunk/leaf chain extraction and Accumulated Path Operation (APO)
//! computation (paper §IV-C1).
//!
//! For a candidate Super-Node root (one SIMD lane), this module collects
//! the *trunk* — the maximal single-use tree of same-family operations
//! (`add`/`sub` or `mul`/`div`) hanging off the root — and its *leaves*,
//! annotating each leaf with:
//!
//! * its **APO**: `+` if the number of right-hand-side-of-inverse-operator
//!   edges on the root-to-leaf path is even, `-` otherwise;
//! * its **trunk-sign class**: the accumulated sign at the trunk node that
//!   owns the leaf position. Trunk reordering (paper §IV-C3) is only legal
//!   between positions of equal class.

use snslp_ir::{Direction, Function, InstId, InstKind, OpFamily, Type};

use crate::ctx::BlockCtx;

/// The unary operation accumulated along a path: identity (`+`) or
/// inversion (`-`), i.e. negation for `add`/`sub` and reciprocal for
/// `mul`/`div`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Even number of inverse edges.
    Plus,
    /// Odd number of inverse edges.
    Minus,
}

impl Sign {
    /// Flips the sign.
    pub fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }

    /// The direction corresponding to this sign within an op family.
    pub fn direction(self) -> Direction {
        match self {
            Sign::Plus => Direction::Direct,
            Sign::Minus => Direction::Inverse,
        }
    }

    /// Display character (`+` / `-`).
    pub fn symbol(self) -> char {
        match self {
            Sign::Plus => '+',
            Sign::Minus => '-',
        }
    }
}

/// A leaf operand of a lane chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneLeaf {
    /// The leaf value (any value: load, constant, parameter, …).
    pub value: InstId,
    /// Accumulated Path Operation of the leaf.
    pub apo: Sign,
    /// Trunk-sign class of the leaf's position (accumulated sign at the
    /// owning trunk node).
    pub class: Sign,
    /// Distance of the owning trunk node from the root (0 = root).
    pub depth: u32,
}

/// One SIMD lane of a (candidate) Super-Node: the trunk instructions and
/// the annotated leaves, sorted root-first (paper Listing 2 line 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneChain {
    /// The root instruction of the lane.
    pub root: InstId,
    /// The operator family of the chain.
    pub family: OpFamily,
    /// All trunk instructions (including the root), in DFS order.
    pub trunk: Vec<InstId>,
    /// All leaves, sorted by `depth` ascending (stable).
    pub leaves: Vec<LaneLeaf>,
}

impl LaneChain {
    /// The chain "size" in the paper's node-depth sense (Figs. 6/7/9/10):
    /// the number of trunk instructions.
    pub fn size(&self) -> u32 {
        self.trunk.len() as u32
    }
}

/// Whether forming a chain of `family` over element type `ty` is legal for
/// a function with the given fast-math setting.
///
/// Integer `add`/`sub` chains are always reassociable (wrapping arithmetic
/// is associative and commutative). Floating-point chains require
/// fast-math, exactly like the paper's `-ffast-math` evaluation setup.
/// `mul`/`div` chains are float-only: integer division does not satisfy
/// the inverse-element axioms (truncation).
pub fn family_allowed(family: OpFamily, ty: Type, fast_math: bool) -> bool {
    let Some(st) = ty.elem_scalar() else {
        return false;
    };
    match family {
        OpFamily::AddSub => st.is_int() || fast_math,
        OpFamily::MulDiv => st.is_float() && fast_math,
    }
}

/// Extracts the chain rooted at `root` for `family`.
///
/// `allow_inverse` selects Super-Node semantics (both family members may
/// appear in the trunk) versus LSLP Multi-Node semantics (direct member
/// only). `claimed` reports instructions already owned by another bundle
/// or another lane's trunk; such instructions terminate the trunk.
///
/// Returns `None` when the root itself does not qualify.
pub fn extract_chain(
    f: &Function,
    ctx: &BlockCtx,
    root: InstId,
    allow_inverse: bool,
    max_leaves: usize,
    claimed: &dyn Fn(InstId) -> bool,
) -> Option<LaneChain> {
    let root_ty = f.ty(root);
    let (family, dir) = match f.kind(root) {
        InstKind::Binary { op, .. } => op.family()?,
        _ => return None,
    };
    if !allow_inverse && dir == Direction::Inverse {
        return None;
    }
    if !family_allowed(family, root_ty, f.fast_math) {
        return None;
    }
    if claimed(root) {
        return None;
    }

    let mut chain = LaneChain {
        root,
        family,
        trunk: Vec::new(),
        leaves: Vec::new(),
    };
    grow(
        f,
        ctx,
        &mut chain,
        root,
        Sign::Plus,
        0,
        allow_inverse,
        max_leaves,
        claimed,
    );
    // Root-first slot order.
    chain.leaves.sort_by_key(|l| l.depth);
    Some(chain)
}

#[allow(clippy::too_many_arguments)]
fn grow(
    f: &Function,
    ctx: &BlockCtx,
    chain: &mut LaneChain,
    t: InstId,
    sign: Sign,
    depth: u32,
    allow_inverse: bool,
    max_leaves: usize,
    claimed: &dyn Fn(InstId) -> bool,
) {
    chain.trunk.push(t);
    let (op, lhs, rhs) = match f.kind(t) {
        InstKind::Binary { op, lhs, rhs } => (*op, *lhs, *rhs),
        _ => unreachable!("trunk members are binary instructions"),
    };
    let (_, dir) = op.family().expect("trunk members belong to the family");
    let rhs_sign = match dir {
        Direction::Direct => sign,
        Direction::Inverse => sign.flip(),
    };
    for (v, edge_sign) in [(lhs, sign), (rhs, rhs_sign)] {
        if is_trunk_candidate(f, ctx, chain, v, allow_inverse, max_leaves, claimed) {
            grow(
                f,
                ctx,
                chain,
                v,
                edge_sign,
                depth + 1,
                allow_inverse,
                max_leaves,
                claimed,
            );
        } else {
            chain.leaves.push(LaneLeaf {
                value: v,
                apo: edge_sign,
                class: sign,
                depth,
            });
        }
    }
}

fn is_trunk_candidate(
    f: &Function,
    ctx: &BlockCtx,
    chain: &LaneChain,
    v: InstId,
    allow_inverse: bool,
    max_leaves: usize,
    claimed: &dyn Fn(InstId) -> bool,
) -> bool {
    // Growing this trunk node adds one leaf net; respect the cap.
    if chain.leaves.len() + chain.trunk.len() + 2 > max_leaves {
        return false;
    }
    if !ctx.in_block(v) || claimed(v) || chain.trunk.contains(&v) {
        return false;
    }
    if f.ty(v) != f.ty(chain.root) {
        return false;
    }
    let InstKind::Binary { op, .. } = f.kind(v) else {
        return false;
    };
    let Some((fam, dir)) = op.family() else {
        return false;
    };
    if fam != chain.family {
        return false;
    }
    if !allow_inverse && dir == Direction::Inverse {
        return false;
    }
    // A trunk member must be used only by its trunk parent; otherwise its
    // value escapes and flattening would change observable behaviour.
    ctx.use_count(v) == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_ir::{FunctionBuilder, Param, ScalarType};

    /// Builds `a - (b + c)` as i64 values loaded from one array.
    fn nested_fn() -> (Function, InstId) {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let a = fb.load(ScalarType::I64, p);
        let p1 = fb.ptradd_const(p, 8);
        let b = fb.load(ScalarType::I64, p1);
        let p2 = fb.ptradd_const(p, 16);
        let c = fb.load(ScalarType::I64, p2);
        let inner = fb.add(b, c);
        let root = fb.sub(a, inner);
        fb.store(p, root);
        fb.ret(None);
        (fb.finish(), root)
    }

    fn extract(f: &Function, root: InstId, allow_inverse: bool) -> Option<LaneChain> {
        let ctx = BlockCtx::compute(f, f.entry());
        extract_chain(f, &ctx, root, allow_inverse, 32, &|_| false)
    }

    #[test]
    fn apo_of_nested_subtraction() {
        // a - (b + c): APOs are a:+, b:-, c:- (paper §IV-C1 example).
        let (f, root) = nested_fn();
        let chain = extract(&f, root, true).unwrap();
        assert_eq!(chain.trunk.len(), 2);
        assert_eq!(chain.leaves.len(), 3);
        let apos: Vec<(u32, Sign, Sign)> = chain
            .leaves
            .iter()
            .map(|l| (l.depth, l.apo, l.class))
            .collect();
        // leaf a: owned by root (depth 0, class +, apo +);
        // leaves b, c: owned by the inner add, which sits on the RHS of
        // the subtraction → class -, apo -.
        assert_eq!(
            apos,
            vec![
                (0, Sign::Plus, Sign::Plus),
                (1, Sign::Minus, Sign::Minus),
                (1, Sign::Minus, Sign::Minus),
            ]
        );
    }

    #[test]
    fn left_chain_apos_and_classes() {
        // ((a - b) + c): all trunk nodes on the spine → classes all +.
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let a = fb.load(ScalarType::I64, p);
        let p1 = fb.ptradd_const(p, 8);
        let b = fb.load(ScalarType::I64, p1);
        let p2 = fb.ptradd_const(p, 16);
        let c = fb.load(ScalarType::I64, p2);
        let t = fb.sub(a, b);
        let root = fb.add(t, c);
        fb.store(p, root);
        fb.ret(None);
        let f = fb.finish();
        let chain = extract(&f, root, true).unwrap();
        assert_eq!(chain.size(), 2);
        let by_value: Vec<(InstId, Sign, Sign)> = chain
            .leaves
            .iter()
            .map(|l| (l.value, l.apo, l.class))
            .collect();
        assert!(by_value.contains(&(a, Sign::Plus, Sign::Plus)));
        assert!(by_value.contains(&(b, Sign::Minus, Sign::Plus)));
        assert!(by_value.contains(&(c, Sign::Plus, Sign::Plus)));
        // Root-first ordering: c (depth 0) comes first.
        assert_eq!(chain.leaves[0].value, c);
    }

    #[test]
    fn lslp_mode_rejects_inverse_roots_and_trunks() {
        let (f, root) = nested_fn();
        // Root is a sub: not a Multi-Node root.
        assert!(extract(&f, root, false).is_none());

        // An add-rooted chain with a sub inside stops at the sub.
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let a = fb.load(ScalarType::I64, p);
        let p1 = fb.ptradd_const(p, 8);
        let b = fb.load(ScalarType::I64, p1);
        let p2 = fb.ptradd_const(p, 16);
        let c = fb.load(ScalarType::I64, p2);
        let t = fb.sub(a, b);
        let root = fb.add(t, c);
        fb.store(p, root);
        fb.ret(None);
        let f = fb.finish();
        let chain = extract(&f, root, false).unwrap();
        // The sub is a *leaf* of the Multi-Node, not a trunk member.
        assert_eq!(chain.trunk.len(), 1);
        assert!(chain.leaves.iter().any(|l| l.value == t));
    }

    #[test]
    fn multi_use_values_terminate_the_trunk() {
        // t = a + b is used twice → must stay a leaf.
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let a = fb.load(ScalarType::I64, p);
        let p1 = fb.ptradd_const(p, 8);
        let b = fb.load(ScalarType::I64, p1);
        let t = fb.add(a, b);
        let root = fb.add(t, t);
        fb.store(p, root);
        fb.ret(None);
        let f = fb.finish();
        let chain = extract(&f, root, true).unwrap();
        assert_eq!(chain.trunk, vec![root]);
        assert_eq!(chain.leaves.len(), 2);
        assert!(chain.leaves.iter().all(|l| l.value == t));
    }

    #[test]
    fn float_chains_require_fast_math() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let a = fb.load(ScalarType::F64, p);
        let p1 = fb.ptradd_const(p, 8);
        let b = fb.load(ScalarType::F64, p1);
        let s = fb.sub(a, b);
        fb.store(p, s);
        fb.ret(None);
        let f = fb.finish();
        assert!(extract(&f, s, true).is_none(), "no fast-math, no fp chain");

        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        fb.set_fast_math(true);
        let p = fb.func().param(0);
        let a = fb.load(ScalarType::F64, p);
        let p1 = fb.ptradd_const(p, 8);
        let b = fb.load(ScalarType::F64, p1);
        let s = fb.sub(a, b);
        fb.store(p, s);
        fb.ret(None);
        let f = fb.finish();
        assert!(extract(&f, s, true).is_some());
    }

    #[test]
    fn muldiv_family_is_float_only() {
        assert!(!family_allowed(
            OpFamily::MulDiv,
            Type::scalar(ScalarType::I64),
            true
        ));
        assert!(family_allowed(
            OpFamily::MulDiv,
            Type::scalar(ScalarType::F32),
            true
        ));
        assert!(!family_allowed(
            OpFamily::MulDiv,
            Type::scalar(ScalarType::F32),
            false
        ));
        assert!(family_allowed(
            OpFamily::AddSub,
            Type::scalar(ScalarType::I32),
            false
        ));
    }

    #[test]
    fn muldiv_chain_apos() {
        // a * b / c → a:+, b:+, c:-  (paper §III-A).
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        fb.set_fast_math(true);
        let p = fb.func().param(0);
        let a = fb.load(ScalarType::F64, p);
        let p1 = fb.ptradd_const(p, 8);
        let b = fb.load(ScalarType::F64, p1);
        let p2 = fb.ptradd_const(p, 16);
        let c = fb.load(ScalarType::F64, p2);
        let m = fb.mul(a, b);
        let root = fb.div(m, c);
        fb.store(p, root);
        fb.ret(None);
        let f = fb.finish();
        let chain = extract(&f, root, true).unwrap();
        assert_eq!(chain.family, OpFamily::MulDiv);
        let find = |v: InstId| chain.leaves.iter().find(|l| l.value == v).unwrap();
        assert_eq!(find(a).apo, Sign::Plus);
        assert_eq!(find(b).apo, Sign::Plus);
        assert_eq!(find(c).apo, Sign::Minus);
    }

    #[test]
    fn deeply_nested_rhs_apo_parity() {
        // a - (b - (c - d)): APO counts right-hand-side-of-inverse edges:
        // a:+ (0), b:- (1), c:+ (2), d:- (3).
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let at = |k: i64, fb: &mut FunctionBuilder| {
            let q = fb.ptradd_const(p, 8 * k);
            fb.load(ScalarType::I64, q)
        };
        let a = at(0, &mut fb);
        let b = at(1, &mut fb);
        let c = at(2, &mut fb);
        let d = at(3, &mut fb);
        let inner2 = fb.sub(c, d);
        let inner1 = fb.sub(b, inner2);
        let root = fb.sub(a, inner1);
        fb.store(p, root);
        fb.ret(None);
        let f = fb.finish();
        let chain = extract(&f, root, true).unwrap();
        assert_eq!(chain.size(), 3);
        let find = |v: InstId| chain.leaves.iter().find(|l| l.value == v).unwrap();
        assert_eq!(find(a).apo, Sign::Plus);
        assert_eq!(find(b).apo, Sign::Minus);
        assert_eq!(find(c).apo, Sign::Plus);
        assert_eq!(find(d).apo, Sign::Minus);
        // Trunk-sign classes alternate down the nesting.
        assert_eq!(find(a).class, Sign::Plus);
        assert_eq!(find(b).class, Sign::Minus);
        assert_eq!(find(c).class, Sign::Plus);
        assert_eq!(find(d).class, Sign::Plus);
    }
}
