//! Memoization cache for look-ahead pair scores.
//!
//! [`score_pair`](crate::lookahead::score_pair) is pure in the function
//! body: for a fixed `Function`, the score of `(a, b, depth)` never
//! changes. The pass re-scores the same pairs many times — operand
//! reordering re-walks shared subtrees, Super-Node leaf grouping scores
//! every candidate leaf against every slot anchor, and mode fallbacks /
//! half-width retries rebuild graphs over the same values — so a small
//! cache keyed on `(a, b, depth)` removes most of the recursive
//! re-evaluation.
//!
//! The cache uses interior mutability (`RefCell`) because scoring call
//! sites hold `&Function` and thread the cache as a shared reference
//! through recursion. Eviction is segmented ("generational") LRU: a hot
//! and a cold `HashMap` generation. Lookups hit the hot generation first,
//! promote from cold on a hit there, and inserts go to hot; when hot
//! fills up, it becomes the new cold generation and the old cold is
//! dropped. Every operation is O(1) amortized, and a recently used entry
//! always survives at least one full generation turnover.
//!
//! **Invalidation is the caller's job**: any rewrite of the function
//! (vectorization, cleanup) invalidates the keys, so the pass driver
//! clears the cache whenever a graph is committed.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use snslp_ir::InstId;

/// Default per-generation capacity. Two generations are live at once, so
/// the worst-case footprint is twice this many entries (12 bytes of
/// payload each plus map overhead) — small enough to be per-function
/// throwaway state.
pub const DEFAULT_SCORE_CACHE_CAPACITY: usize = 1 << 14;

/// A fast, non-cryptographic hasher for the packed score key. The
/// standard `SipHash` costs more than the memoized computation it guards
/// on small subtrees; this is a single multiply-xor mix (fxhash-style),
/// which is plenty for arena indexes.
#[derive(Debug, Default)]
pub struct ScoreKeyHasher(u64);

const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for ScoreKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(SEED).rotate_left(5);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(SEED).rotate_left(26);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }
}

type ScoreMap = HashMap<u128, i32, BuildHasherDefault<ScoreKeyHasher>>;

/// Packs `(a, b, depth)` into one exact (collision-free) key: the two
/// 32-bit arena ids and the depth each get their own field.
#[inline]
fn key(a: InstId, b: InstId, depth: u32) -> u128 {
    (u128::from(a.0) << 64) | (u128::from(b.0) << 32) | u128::from(depth)
}

#[derive(Debug, Default)]
struct Generations {
    hot: ScoreMap,
    cold: ScoreMap,
}

/// Segmented-LRU memo table for `(a, b, depth) → score`. See the module
/// docs for the eviction scheme and the invalidation contract.
#[derive(Debug)]
pub struct LruScoreCache {
    gens: RefCell<Generations>,
    capacity: usize,
}

impl Default for LruScoreCache {
    fn default() -> Self {
        Self::new(DEFAULT_SCORE_CACHE_CAPACITY)
    }
}

impl LruScoreCache {
    /// Creates a cache holding up to `capacity` entries per generation.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "score cache capacity must be nonzero");
        LruScoreCache {
            gens: RefCell::new(Generations::default()),
            capacity,
        }
    }

    /// Looks up a memoized score, promoting cold-generation hits.
    pub fn get(&self, a: InstId, b: InstId, depth: u32) -> Option<i32> {
        let k = key(a, b, depth);
        let mut gens = self.gens.borrow_mut();
        if let Some(&s) = gens.hot.get(&k) {
            return Some(s);
        }
        if let Some(s) = gens.cold.remove(&k) {
            Self::insert_hot(&mut gens, self.capacity, k, s);
            return Some(s);
        }
        None
    }

    /// Memoizes a score.
    pub fn insert(&self, a: InstId, b: InstId, depth: u32, score: i32) {
        let mut gens = self.gens.borrow_mut();
        let k = key(a, b, depth);
        Self::insert_hot(&mut gens, self.capacity, k, score);
    }

    fn insert_hot(gens: &mut Generations, capacity: usize, k: u128, score: i32) {
        if gens.hot.len() >= capacity && !gens.hot.contains_key(&k) {
            // Generation turnover: hot becomes cold, old cold is dropped.
            let retired = std::mem::take(&mut gens.hot);
            gens.cold = retired;
        }
        gens.hot.insert(k, score);
    }

    /// Number of live entries across both generations.
    pub fn len(&self) -> usize {
        let gens = self.gens.borrow();
        gens.hot.len() + gens.cold.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry. Call after any rewrite of the function the
    /// cached scores were computed over.
    pub fn clear(&self) {
        let mut gens = self.gens.borrow_mut();
        gens.hot.clear();
        gens.cold.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> InstId {
        InstId(n)
    }

    #[test]
    fn get_after_insert() {
        let c = LruScoreCache::new(8);
        assert_eq!(c.get(id(1), id(2), 3), None);
        c.insert(id(1), id(2), 3, 42);
        assert_eq!(c.get(id(1), id(2), 3), Some(42));
        // Key fields are not interchangeable.
        assert_eq!(c.get(id(2), id(1), 3), None);
        assert_eq!(c.get(id(1), id(2), 2), None);
    }

    #[test]
    fn generation_turnover_keeps_recent_entries() {
        let c = LruScoreCache::new(4);
        for i in 0..4 {
            c.insert(id(i), id(i), 0, i as i32);
        }
        // Turnover: 0..4 retire to the cold generation.
        c.insert(id(100), id(100), 0, -1);
        // A cold hit survives by promotion into the hot generation.
        assert_eq!(c.get(id(3), id(3), 0), Some(3));
        // Fill hot again; the next turnover drops the unpromoted rest.
        for i in 200..203 {
            c.insert(id(i), id(i), 0, 9);
        }
        c.insert(id(300), id(300), 0, 9);
        assert_eq!(c.get(id(3), id(3), 0), Some(3), "promoted entry survives");
        assert_eq!(c.get(id(0), id(0), 0), None, "unpromoted entry evicted");
    }

    #[test]
    fn clear_empties_both_generations() {
        let c = LruScoreCache::new(2);
        c.insert(id(1), id(1), 0, 1);
        c.insert(id(2), id(2), 0, 2);
        c.insert(id(3), id(3), 0, 3);
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(id(1), id(1), 0), None);
    }

    #[test]
    fn bounded_footprint() {
        let c = LruScoreCache::new(16);
        for i in 0..10_000 {
            c.insert(id(i), id(i + 1), 2, i as i32);
        }
        assert!(c.len() <= 32, "two generations of 16: {}", c.len());
    }
}
