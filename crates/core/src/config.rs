//! Vectorizer configuration.

use snslp_cost::CostModel;

/// Which member of the SLP algorithm family to run.
///
/// These are the three configurations evaluated by the paper (§V):
/// *O3* (no SLP at all — simply do not run the pass), vanilla bottom-up
/// [`SlpMode::Slp`], Look-Ahead SLP with Multi-Nodes [`SlpMode::Lslp`],
/// and Super-Node SLP [`SlpMode::SnSlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlpMode {
    /// Vanilla bottom-up SLP (Rosen et al. / Rotem et al.): isomorphic
    /// bundles, per-lane commutative operand reordering, alternating
    /// add/sub bundles. No chain flattening.
    Slp,
    /// LSLP \[Porpodas et al., 2018\]: vanilla SLP plus Multi-Nodes
    /// (uninterrupted single-opcode commutative chains) with look-ahead
    /// operand reordering.
    Lslp,
    /// Super-Node SLP (this paper): Multi-Nodes generalized to include the
    /// operator's inverse element, with APO-based leaf and trunk
    /// reordering.
    SnSlp,
}

impl SlpMode {
    /// Whether chains are flattened into Multi/Super-Nodes at all.
    pub fn flattens_chains(self) -> bool {
        !matches!(self, SlpMode::Slp)
    }

    /// Whether inverse operators may join a flattened chain.
    pub fn allows_inverse_ops(self) -> bool {
        matches!(self, SlpMode::SnSlp)
    }

    /// Human-readable label used in reports and figures.
    pub fn label(self) -> &'static str {
        match self {
            SlpMode::Slp => "SLP",
            SlpMode::Lslp => "LSLP",
            SlpMode::SnSlp => "SN-SLP",
        }
    }
}

/// Tunable parameters of the vectorizer.
#[derive(Debug, Clone)]
pub struct SlpConfig {
    /// Algorithm variant.
    pub mode: SlpMode,
    /// Cost model (target description + parameters).
    pub model: CostModel,
    /// Vectorize only if the total graph cost is strictly below this
    /// threshold (paper: "usually 0"; lower = saving).
    pub threshold: i32,
    /// Maximum use-def recursion depth while growing the graph.
    pub max_depth: u32,
    /// Look-ahead recursion depth for LSLP operand scoring.
    pub lookahead_depth: u32,
    /// Maximum leaves per Super-Node (compile-time cap, paper §IV-C4:
    /// "we need to cap compilation time for large Super-Nodes").
    pub max_supernode_leaves: usize,
    /// Allow trunk reordering in Super-Nodes (paper §IV-C3). Disabling
    /// this leaves only the restrictive leaf-APO rule of §IV-C2 — the
    /// ablation showing why trunk movement is needed (e.g. the Fig. 3
    /// example stops vectorizing).
    pub enable_trunk_reordering: bool,
    /// Vectorize horizontal reduction trees (the paper's
    /// `-slp-vectorize-hor`, enabled for all configurations in §V).
    pub enable_reductions: bool,
    /// Minimum reduction-tree leaves worth vectorizing.
    pub min_reduction_leaves: usize,
    /// Run the IR verifier after every rewrite (slower; tests enable it).
    pub verify_after: bool,
    /// Retain the final DOT source of every attempted graph on its
    /// [`GraphStats`](crate::GraphStats) entry, decision-stamped. Off by
    /// default (the pass allocates nothing for DOT then); the report
    /// pipeline (`snslp-report`, `snslpc --report`) turns it on to embed
    /// graph snapshots without going through the trace sink.
    pub keep_graph_dots: bool,
}

impl SlpConfig {
    /// Default configuration for a mode with the default (SSE2-like)
    /// cost model.
    pub fn new(mode: SlpMode) -> Self {
        SlpConfig {
            mode,
            model: CostModel::default(),
            threshold: 0,
            max_depth: 12,
            lookahead_depth: 2,
            max_supernode_leaves: 32,
            enable_trunk_reordering: true,
            enable_reductions: true,
            min_reduction_leaves: 4,
            verify_after: false,
            keep_graph_dots: false,
        }
    }

    /// Replaces the cost model.
    pub fn with_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Enables IR verification after every rewrite.
    pub fn with_verification(mut self) -> Self {
        self.verify_after = true;
        self
    }

    /// Stable 64-bit fingerprint of every field that can change the
    /// pass's output: mode, thresholds and caps, feature toggles, and the
    /// full cost model (target description + parameters).
    ///
    /// Two configs with equal fingerprints compile any function to the
    /// same artifact, which is what lets the compile service fold the
    /// config into its cache key ([`CacheKey`](crate::cache::CacheKey))
    /// and batch same-config requests into one driver invocation. Built
    /// on seedless [`FxHasher`](snslp_ir::fxhash::FxHasher), so it is
    /// stable across processes and restarts.
    pub fn fingerprint(&self) -> u64 {
        use snslp_ir::fxhash::FxHasher;
        use std::hash::Hasher;
        let mut h = FxHasher::default();
        // One flat field-order-defined record; bump a leading version tag
        // if the meaning of any field ever changes.
        h.write_u64(1); // fingerprint schema version
        h.write(self.mode.label().as_bytes());
        h.write_i64(i64::from(self.threshold));
        h.write_u64(u64::from(self.max_depth));
        h.write_u64(u64::from(self.lookahead_depth));
        h.write_u64(self.max_supernode_leaves as u64);
        h.write_u8(u8::from(self.enable_trunk_reordering));
        h.write_u8(u8::from(self.enable_reductions));
        h.write_u64(self.min_reduction_leaves as u64);
        h.write_u8(u8::from(self.verify_after));
        h.write_u8(u8::from(self.keep_graph_dots));
        let t = self.model.target();
        h.write(t.name().as_bytes());
        h.write_u64(u64::from(t.register_bits()));
        h.write_u8(u8::from(t.has_lanewise_altop()));
        let p = self.model.params();
        for v in [
            p.binop,
            p.div,
            p.sqrt,
            p.load,
            p.store,
            p.insert,
            p.extract,
            p.shuffle,
            p.altop_penalty,
            p.altop_emulation_penalty,
        ] {
            h.write_i64(i64::from(v));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_capabilities() {
        assert!(!SlpMode::Slp.flattens_chains());
        assert!(SlpMode::Lslp.flattens_chains());
        assert!(SlpMode::SnSlp.flattens_chains());
        assert!(!SlpMode::Slp.allows_inverse_ops());
        assert!(!SlpMode::Lslp.allows_inverse_ops());
        assert!(SlpMode::SnSlp.allows_inverse_ops());
    }

    #[test]
    fn labels() {
        assert_eq!(SlpMode::SnSlp.label(), "SN-SLP");
        assert_eq!(SlpMode::Lslp.label(), "LSLP");
    }

    #[test]
    fn fingerprint_tracks_output_relevant_fields() {
        let base = SlpConfig::new(SlpMode::SnSlp);
        assert_eq!(
            base.fingerprint(),
            SlpConfig::new(SlpMode::SnSlp).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            SlpConfig::new(SlpMode::Lslp).fingerprint()
        );

        let mut c = SlpConfig::new(SlpMode::SnSlp);
        c.threshold = -1;
        assert_ne!(base.fingerprint(), c.fingerprint());

        let mut c = SlpConfig::new(SlpMode::SnSlp);
        c.keep_graph_dots = true;
        assert_ne!(base.fingerprint(), c.fingerprint());

        let c = SlpConfig::new(SlpMode::SnSlp)
            .with_model(CostModel::new(snslp_cost::TargetDesc::avx2_like()));
        assert_ne!(base.fingerprint(), c.fingerprint());
    }
}
