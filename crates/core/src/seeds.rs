//! Seed collection (paper Fig. 1 step 1: "Find seeds & add to worklist").
//!
//! Adjacent store groups are "some of the most promising seeds and
//! therefore most compilers look for these first" (§II-B); this module
//! finds runs of stores to consecutive addresses of the same element type
//! and chunks them into power-of-two bundles.

use snslp_ir::{Function, InstId, InstKind, ScalarType};
use snslp_ir::{FxHashMap, FxHashSet};

use crate::ctx::BlockCtx;

/// A bundle of adjacent stores to start graph construction from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedGroup {
    /// The stores, in ascending address order.
    pub stores: Vec<InstId>,
    /// Element type stored.
    pub elem: ScalarType,
}

impl SeedGroup {
    /// Vector width of the bundle.
    pub fn width(&self) -> u8 {
        self.stores.len() as u8
    }
}

/// Collects store seed groups in `ctx.block`, skipping any store in
/// `processed` (already attempted). `max_lanes` caps the group width by
/// element type (from the target's register width).
pub fn collect_store_seeds(
    f: &Function,
    ctx: &BlockCtx,
    max_lanes: impl Fn(ScalarType) -> u8,
    processed: &FxHashSet<InstId>,
) -> Vec<SeedGroup> {
    // Group stores by (address root, element type).
    let mut buckets: FxHashMap<(InstId, ScalarType), Vec<(i64, InstId)>> = FxHashMap::default();
    for &id in f.block(ctx.block).insts() {
        if processed.contains(&id) {
            continue;
        }
        let InstKind::Store { value, .. } = f.kind(id) else {
            continue;
        };
        let Some(elem) = f.ty(*value).as_scalar() else {
            continue; // vector stores are already vectorized
        };
        let Some(loc) = ctx.memloc(id) else {
            continue;
        };
        buckets
            .entry((loc.addr.root, elem))
            .or_default()
            .push((loc.addr.offset, id));
    }

    let mut groups = Vec::new();
    let mut keys: Vec<(InstId, ScalarType)> = buckets.keys().copied().collect();
    // Full deterministic order: size alone ties I32/F32 and I64/F64 under
    // the same root, which would leak HashMap iteration order into the
    // seed order (and hence remarks, DOT dumps and fuzz runs).
    keys.sort_by_key(|(root, elem)| (root.0, elem.size_bytes(), *elem as u8));
    for key in keys {
        let mut stores = buckets.remove(&key).expect("key from map");
        let (_, elem) = key;
        let size = i64::from(elem.size_bytes());
        stores.sort_by_key(|&(off, _)| off);
        stores.dedup_by_key(|&mut (off, _)| off); // duplicate offsets: keep first

        // Split into maximal runs of consecutive offsets.
        let mut run: Vec<InstId> = Vec::new();
        let mut prev_off: Option<i64> = None;
        let flush = |run: &mut Vec<InstId>, groups: &mut Vec<SeedGroup>| {
            let max_vf = max_lanes(elem).max(1);
            let mut rest: &[InstId] = run;
            while rest.len() >= 2 {
                // Largest power-of-two chunk ≤ min(max_vf, remaining).
                let mut vf = max_vf.min(rest.len() as u8);
                while !vf.is_power_of_two() {
                    vf -= 1;
                }
                if vf < 2 {
                    break;
                }
                let (chunk, tail) = rest.split_at(vf as usize);
                groups.push(SeedGroup {
                    stores: chunk.to_vec(),
                    elem,
                });
                rest = tail;
            }
            run.clear();
        };
        for (off, id) in stores {
            match prev_off {
                Some(p) if off == p + size => run.push(id),
                Some(_) | None => {
                    flush(&mut run, &mut groups);
                    run.push(id);
                }
            }
            prev_off = Some(off);
        }
        flush(&mut run, &mut groups);
    }
    snslp_trace::add(snslp_trace::Counter::SeedsCollected, groups.len() as u64);
    snslp_trace::trace_event!(
        "seeds.stores",
        "count" => groups.len(),
    );
    groups
}

/// A horizontal-reduction seed (paper §II-B: "instructions that form
/// reduction trees", the `-slp-vectorize-hor` case): a maximal
/// single-use tree of one commutative associative opcode whose leaves
/// can be bundled into vectors and reduced with shuffles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionSeed {
    /// The tree root (its value is replaced by the horizontal reduction).
    pub root: InstId,
    /// Interior tree instructions (including the root), all removed.
    pub tree: Vec<InstId>,
    /// The leaf values, in tree order.
    pub leaves: Vec<InstId>,
    /// The reduction opcode (`add`, `mul`, `min`, `max`, …).
    pub op: snslp_ir::BinOp,
}

/// Collects horizontal-reduction seeds in `ctx.block`.
///
/// A root qualifies when it is a commutative associative binary op whose
/// value is *not* consumed by another instruction of the same opcode
/// (i.e. it is the top of the tree), the tree has at least `min_leaves`
/// leaves, and — for floats — the function allows reassociation.
pub fn collect_reduction_seeds(
    f: &Function,
    ctx: &BlockCtx,
    min_leaves: usize,
    processed: &FxHashSet<InstId>,
) -> Vec<ReductionSeed> {
    let mut out = Vec::new();
    for &id in f.block(ctx.block).insts() {
        if processed.contains(&id) {
            continue;
        }
        let InstKind::Binary { op, .. } = f.kind(id) else {
            continue;
        };
        let op = *op;
        if !op.is_commutative() || !op.is_associative() {
            continue;
        }
        if let Some(st) = f.ty(id).as_scalar() {
            if st.is_float() && !f.fast_math {
                continue;
            }
        } else {
            continue;
        }
        // Must be the top of the tree: no user with the same opcode in
        // this block (such a user would absorb this node into its own
        // tree).
        let absorbed = ctx.users_of(id).iter().any(|&u| {
            ctx.in_block(u) && matches!(f.kind(u), InstKind::Binary { op: o, .. } if *o == op)
        });
        if absorbed {
            continue;
        }
        let mut tree = Vec::new();
        let mut leaves = Vec::new();
        grow_reduction(f, ctx, id, op, &mut tree, &mut leaves);
        if leaves.len() >= min_leaves {
            out.push(ReductionSeed {
                root: id,
                tree,
                leaves,
                op,
            });
        }
    }
    snslp_trace::add(snslp_trace::Counter::SeedsCollected, out.len() as u64);
    snslp_trace::trace_event!(
        "seeds.reductions",
        "count" => out.len(),
    );
    out
}

fn grow_reduction(
    f: &Function,
    ctx: &BlockCtx,
    t: InstId,
    op: snslp_ir::BinOp,
    tree: &mut Vec<InstId>,
    leaves: &mut Vec<InstId>,
) {
    tree.push(t);
    for v in f.kind(t).operands() {
        let is_interior = ctx.in_block(v)
            && ctx.use_count(v) == 1
            && f.ty(v) == f.ty(t)
            && matches!(f.kind(v), InstKind::Binary { op: o, .. } if *o == op);
        if is_interior {
            grow_reduction(f, ctx, v, op, tree, leaves);
        } else {
            leaves.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_ir::{FunctionBuilder, Param, Type};

    /// Stores x to a[k] for the given element offsets (in elements).
    fn store_fn(elem_offsets: &[i64]) -> (Function, Vec<InstId>) {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("a")], Type::Void);
        let a = fb.func().param(0);
        let x = fb.load(ScalarType::F64, a);
        let mut stores = Vec::new();
        for &k in elem_offsets {
            let p = fb.ptradd_const(a, 8 * k + 64); // avoid clobbering a[0]
            stores.push(fb.store(p, x));
        }
        fb.ret(None);
        (fb.finish(), stores)
    }

    fn seeds_of(f: &Function, max: u8) -> Vec<SeedGroup> {
        let ctx = BlockCtx::compute(f, f.entry());
        collect_store_seeds(f, &ctx, |_| max, &FxHashSet::default())
    }

    #[test]
    fn consecutive_run_becomes_one_group() {
        let (f, stores) = store_fn(&[0, 1]);
        let groups = seeds_of(&f, 2);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].stores, stores);
        assert_eq!(groups[0].width(), 2);
    }

    #[test]
    fn gaps_split_runs() {
        let (f, _) = store_fn(&[0, 1, 3, 4]);
        let groups = seeds_of(&f, 2);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn long_runs_chunked_to_max_lanes() {
        let (f, _) = store_fn(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let groups = seeds_of(&f, 2);
        assert_eq!(groups.len(), 4);
        let groups = seeds_of(&f, 4);
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|g| g.width() == 4));
    }

    #[test]
    fn leftovers_use_smaller_power_of_two() {
        // Run of 3 with max 4: one pair, one leftover scalar.
        let (f, _) = store_fn(&[0, 1, 2]);
        let groups = seeds_of(&f, 4);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].width(), 2);
    }

    #[test]
    fn unordered_stores_are_sorted() {
        let (f, stores) = store_fn(&[1, 0]);
        let groups = seeds_of(&f, 2);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].stores, vec![stores[1], stores[0]]);
    }

    #[test]
    fn processed_stores_are_skipped() {
        let (f, stores) = store_fn(&[0, 1]);
        let ctx = BlockCtx::compute(&f, f.entry());
        let mut processed = FxHashSet::default();
        processed.insert(stores[0]);
        let groups = collect_store_seeds(&f, &ctx, |_| 2, &processed);
        assert!(groups.is_empty(), "a lone store cannot seed");
    }

    #[test]
    fn same_size_elem_types_order_deterministically() {
        // I32 and F32 stores share the root and have equal element size;
        // the bucket sort must not fall back to HashMap iteration order.
        // Rebuild everything each iteration so each HashMap gets a fresh
        // random hash state.
        let build = || {
            let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("a")], Type::Void);
            let a = fb.func().param(0);
            let xf = fb.load(ScalarType::F32, a);
            let xi = fb.load(ScalarType::I32, a);
            for k in 0..2 {
                let p = fb.ptradd_const(a, 4 * k + 64);
                fb.store(p, xf);
            }
            for k in 0..2 {
                let p = fb.ptradd_const(a, 4 * k + 128);
                fb.store(p, xi);
            }
            fb.ret(None);
            fb.finish()
        };
        for _ in 0..32 {
            let f = build();
            let groups = seeds_of(&f, 4);
            let elems: Vec<ScalarType> = groups.iter().map(|g| g.elem).collect();
            assert_eq!(elems, vec![ScalarType::I32, ScalarType::F32]);
        }
    }

    /// out[0] = sum of src[0..k] as a left chain of adds.
    fn reduction_fn(k: usize) -> (Function, InstId) {
        let mut fb = FunctionBuilder::new(
            "r",
            vec![Param::noalias_ptr("out"), Param::noalias_ptr("src")],
            Type::Void,
        );
        let out = fb.func().param(0);
        let src = fb.func().param(1);
        let mut acc = fb.load(ScalarType::F64, src);
        fb.set_fast_math(true);
        for i in 1..k {
            let p = fb.ptradd_const(src, 8 * i as i64);
            let v = fb.load(ScalarType::F64, p);
            acc = fb.add(acc, v);
        }
        fb.store(out, acc);
        fb.ret(None);
        (fb.finish(), acc)
    }

    #[test]
    fn reduction_seed_detected() {
        let (f, root) = reduction_fn(8);
        let ctx = BlockCtx::compute(&f, f.entry());
        let seeds = collect_reduction_seeds(&f, &ctx, 4, &FxHashSet::default());
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].root, root);
        assert_eq!(seeds[0].leaves.len(), 8);
        assert_eq!(seeds[0].tree.len(), 7);
    }

    #[test]
    fn short_reductions_skipped() {
        let (f, _) = reduction_fn(3);
        let ctx = BlockCtx::compute(&f, f.entry());
        assert!(collect_reduction_seeds(&f, &ctx, 4, &FxHashSet::default()).is_empty());
    }

    #[test]
    fn float_reduction_requires_fast_math() {
        let mut fb = FunctionBuilder::new(
            "r",
            vec![Param::noalias_ptr("out"), Param::noalias_ptr("src")],
            Type::Void,
        );
        let out = fb.func().param(0);
        let src = fb.func().param(1);
        let mut acc = fb.load(ScalarType::F64, src);
        for i in 1..8 {
            let p = fb.ptradd_const(src, 8 * i as i64);
            let v = fb.load(ScalarType::F64, p);
            acc = fb.add(acc, v);
        }
        fb.store(out, acc);
        fb.ret(None);
        let f = fb.finish(); // fast_math NOT set
        let ctx = BlockCtx::compute(&f, f.entry());
        assert!(collect_reduction_seeds(&f, &ctx, 4, &FxHashSet::default()).is_empty());
    }

    #[test]
    fn interior_nodes_not_separate_seeds() {
        // Every interior add is absorbed by the root's tree.
        let (f, _) = reduction_fn(6);
        let ctx = BlockCtx::compute(&f, f.entry());
        let seeds = collect_reduction_seeds(&f, &ctx, 2, &FxHashSet::default());
        assert_eq!(seeds.len(), 1);
    }
}
