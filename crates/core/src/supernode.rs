//! Super-Node leaf and trunk reordering (paper §IV-C, Listings 2 and 3).
//!
//! Given one [`LaneChain`] per SIMD lane (all with the same leaf count),
//! the planner greedily assigns, slot by slot (root-first), one leaf per
//! lane to each operand position of the "fat" Super-Node, maximizing the
//! LSLP look-ahead score of each group.
//!
//! ## Legality model
//!
//! Each lane's leaf positions carry an APO label and a trunk-sign class
//! (see [`crate::chain`]). The paper's two legality rules translate to a
//! label-consumption scheme:
//!
//! * **leaf-only move** (§IV-C2): a leaf may occupy a position whose APO
//!   label equals the leaf's APO;
//! * **trunk-assisted move** (§IV-C3): trunk nodes of equal accumulated
//!   sign may swap, which permutes APO labels *within* a trunk-sign class
//!   (and never across classes — the Fig. 4(c) illegal case).
//!
//! Consequently a leaf is assignable to slot *j* of its lane iff the
//! class of position *j* still has an unconsumed label equal to the
//! leaf's APO. Because every lane's leaf multiset matches its label
//! multiset, the greedy assignment can never strand a slot.

use snslp_ir::{Function, InstId, OpFamily};

use crate::chain::{LaneChain, Sign};
use crate::lookahead::score_pair_with;
use crate::score_cache::LruScoreCache;

/// One lane's contribution to one operand slot of the Super-Node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotChoice {
    /// The leaf value placed in this slot.
    pub value: InstId,
    /// The sign with which it enters the flattened expression (its APO).
    pub sign: Sign,
}

/// The planned Super-Node: reordered leaf groups plus statistics.
#[derive(Debug, Clone)]
pub struct SuperNodePlan {
    /// Operator family of the node.
    pub family: OpFamily,
    /// Per-lane chains (trunk instructions, used for replacement).
    pub chains: Vec<LaneChain>,
    /// Slot-major assignment: `slots[j][lane]`.
    pub slots: Vec<Vec<SlotChoice>>,
    /// Number of placements achieved by a plain leaf move.
    pub leaf_moves: usize,
    /// Number of placements that needed a trunk swap (label borrowed from
    /// a different position of the same class).
    pub trunk_assisted_moves: usize,
}

impl SuperNodePlan {
    /// Number of SIMD lanes.
    pub fn width(&self) -> usize {
        self.chains.len()
    }

    /// Number of operand slots (= leaves per lane).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The per-lane signs of slot `j`.
    pub fn slot_signs(&self, j: usize) -> Vec<Sign> {
        self.slots[j].iter().map(|c| c.sign).collect()
    }

    /// The per-lane values of slot `j` (the bundle to vectorize).
    pub fn slot_values(&self, j: usize) -> Vec<InstId> {
        self.slots[j].iter().map(|c| c.value).collect()
    }

    /// The paper's node "size" (depth): trunk instructions per lane.
    pub fn size(&self) -> u32 {
        self.chains[0].size()
    }
}

/// Per-lane mutable state during planning.
struct LaneState {
    used: Vec<bool>,
    /// Remaining APO labels per class: [class][label] → count,
    /// indexed Plus=0 / Minus=1.
    labels: [[u32; 2]; 2],
}

fn idx(s: Sign) -> usize {
    match s {
        Sign::Plus => 0,
        Sign::Minus => 1,
    }
}

impl LaneState {
    fn new(chain: &LaneChain) -> Self {
        let mut labels = [[0u32; 2]; 2];
        for l in &chain.leaves {
            labels[idx(l.class)][idx(l.apo)] += 1;
        }
        LaneState {
            used: vec![false; chain.leaves.len()],
            labels,
        }
    }

    /// Whether a leaf with APO `apo` can be placed at a position of class
    /// `class` (some unconsumed label of that class matches).
    fn legal(&self, class: Sign, apo: Sign) -> bool {
        self.labels[idx(class)][idx(apo)] > 0
    }

    fn consume(&mut self, class: Sign, apo: Sign) {
        debug_assert!(self.legal(class, apo));
        self.labels[idx(class)][idx(apo)] -= 1;
    }
}

/// Plans the reordered Super-Node for `chains` with trunk reordering
/// enabled (the full algorithm).
///
/// # Panics
///
/// Panics if `chains` is empty or the lanes have differing leaf counts
/// (the caller checks compatibility first, paper Listing 1 `areCompatible`).
pub fn plan_supernode(f: &Function, chains: Vec<LaneChain>, lookahead_depth: u32) -> SuperNodePlan {
    plan_supernode_with(f, chains, lookahead_depth, true)
}

/// Plans the reordered Super-Node, optionally restricting legality to
/// leaf-only moves (`allow_trunk_swaps = false`, the §IV-C2 rule alone —
/// the ablation of §IV-C3's trunk movement).
///
/// # Panics
///
/// Panics if `chains` is empty or the lanes have differing leaf counts.
pub fn plan_supernode_with(
    f: &Function,
    chains: Vec<LaneChain>,
    lookahead_depth: u32,
    allow_trunk_swaps: bool,
) -> SuperNodePlan {
    plan_supernode_cached(f, chains, lookahead_depth, allow_trunk_swaps, None)
}

/// [`plan_supernode_with`] with an optional memoized look-ahead score
/// cache (the pass pipeline threads its per-function cache through here;
/// leaf grouping scores every candidate leaf against every slot anchor,
/// so it re-requests the same pairs heavily).
pub fn plan_supernode_cached(
    f: &Function,
    chains: Vec<LaneChain>,
    lookahead_depth: u32,
    allow_trunk_swaps: bool,
    cache: Option<&LruScoreCache>,
) -> SuperNodePlan {
    assert!(!chains.is_empty(), "need at least one lane");
    let n_slots = chains[0].leaves.len();
    assert!(
        chains.iter().all(|c| c.leaves.len() == n_slots),
        "lanes must have equal leaf counts"
    );
    let family = chains[0].family;
    let width = chains.len();

    let mut states: Vec<LaneState> = chains.iter().map(LaneState::new).collect();
    let mut slots: Vec<Vec<SlotChoice>> = Vec::with_capacity(n_slots);
    let mut leaf_moves = 0usize;
    let mut trunk_assisted = 0usize;

    // Legality of placing a leaf at slot `op_i` of `lane`: with trunk
    // swaps, any unconsumed label of the slot's trunk-sign class may be
    // borrowed (§IV-C3); leaf-only, the leaf's APO must equal the slot's
    // own original label (§IV-C2).
    let slot_legal = |states: &[LaneState], lane: usize, op_i: usize, apo: Sign| -> bool {
        if allow_trunk_swaps {
            states[lane].legal(chains[lane].leaves[op_i].class, apo)
        } else {
            chains[lane].leaves[op_i].apo == apo
        }
    };

    // Slots are visited root-first: the leaves of each chain are already
    // sorted by depth, so slot j's class in lane L is chains[L].leaves[j]
    // .class and its original APO label is .apo.
    for op_i in 0..n_slots {
        // Try every legal lane-0 leaf as the group's anchor (Listing 2
        // line ~10) and keep the best-scoring group.
        let mut best: Option<(Vec<usize>, i32)> = None;
        for anchor in 0..n_slots {
            if states[0].used[anchor] {
                continue;
            }
            if !slot_legal(&states, 0, op_i, chains[0].leaves[anchor].apo) {
                continue;
            }
            // Greedily extend to the other lanes (Listing 3).
            let mut group = vec![anchor];
            let mut score = 0i32;
            let mut ok = true;
            for lane in 1..width {
                let prev_val = chains[lane - 1].leaves[group[lane - 1]].value;
                let mut best_leaf: Option<(usize, i32)> = None;
                for (li, leaf) in chains[lane].leaves.iter().enumerate() {
                    if states[lane].used[li] || !slot_legal(&states, lane, op_i, leaf.apo) {
                        continue;
                    }
                    let s = score_pair_with(f, cache, prev_val, leaf.value, lookahead_depth);
                    if best_leaf.map(|(_, bs)| s > bs).unwrap_or(true) {
                        best_leaf = Some((li, s));
                    }
                }
                match best_leaf {
                    Some((li, s)) => {
                        group.push(li);
                        score += s;
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && best.as_ref().map(|(_, bs)| score > *bs).unwrap_or(true) {
                best = Some((group, score));
            }
        }

        let (group, _) = best.expect("a legal candidate always exists (label invariant)");
        let mut slot = Vec::with_capacity(width);
        for (lane, &leaf_idx) in group.iter().enumerate() {
            let leaf = chains[lane].leaves[leaf_idx];
            let pos = &chains[lane].leaves[op_i];
            states[lane].used[leaf_idx] = true;
            states[lane].consume(pos.class, leaf.apo);
            if leaf.apo == pos.apo {
                leaf_moves += 1;
                snslp_trace::bump(snslp_trace::Counter::LeafMoves);
            } else {
                trunk_assisted += 1;
                snslp_trace::bump(snslp_trace::Counter::TrunkAssistedMoves);
            }
            slot.push(SlotChoice {
                value: leaf.value,
                sign: leaf.apo,
            });
        }
        slots.push(slot);
    }

    SuperNodePlan {
        family,
        chains,
        slots,
        leaf_moves,
        trunk_assisted_moves: trunk_assisted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::extract_chain;
    use crate::ctx::BlockCtx;
    use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};

    /// Builds the paper's Figure 3 kernel (one unrolled iteration pair):
    /// `A[0] = B[0] - C[0] + D[0];  A[1] = B[1] + D[1] - C[1]`.
    /// Returns the function and the two lane roots.
    fn fig3() -> (Function, InstId, InstId) {
        let mut fb = FunctionBuilder::new(
            "fig3",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::noalias_ptr("c"),
                Param::noalias_ptr("d"),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let c = fb.func().param(2);
        let d = fb.func().param(3);
        // Lane 0
        let b0 = fb.load(ScalarType::I64, b);
        let c0 = fb.load(ScalarType::I64, c);
        let d0 = fb.load(ScalarType::I64, d);
        let t0 = fb.sub(b0, c0);
        let r0 = fb.add(t0, d0);
        fb.store(a, r0);
        // Lane 1
        let pb1 = fb.ptradd_const(b, 8);
        let pc1 = fb.ptradd_const(c, 8);
        let pd1 = fb.ptradd_const(d, 8);
        let pa1 = fb.ptradd_const(a, 8);
        let b1 = fb.load(ScalarType::I64, pb1);
        let d1 = fb.load(ScalarType::I64, pd1);
        let c1 = fb.load(ScalarType::I64, pc1);
        let t1 = fb.add(b1, d1);
        let r1 = fb.sub(t1, c1);
        fb.store(pa1, r1);
        fb.ret(None);
        (fb.finish(), r0, r1)
    }

    fn chains_of(f: &Function, roots: &[InstId]) -> Vec<LaneChain> {
        let ctx = BlockCtx::compute(f, f.entry());
        roots
            .iter()
            .map(|&r| extract_chain(f, &ctx, r, true, 32, &|_| false).unwrap())
            .collect()
    }

    #[test]
    fn fig3_groups_become_isomorphic() {
        let (f, r0, r1) = fig3();
        let chains = chains_of(&f, &[r0, r1]);
        assert_eq!(chains[0].leaves.len(), 3);
        assert_eq!(chains[1].leaves.len(), 3);
        let plan = plan_supernode(&f, chains, 2);
        assert_eq!(plan.num_slots(), 3);
        // Every slot must pair leaves from the same array: consecutive
        // loads score highest, so the planner aligns B with B, C with C,
        // D with D — and each slot's signs agree across lanes.
        for j in 0..3 {
            let signs = plan.slot_signs(j);
            assert_eq!(
                signs[0], signs[1],
                "slot {j} should have matching signs after reordering"
            );
        }
        // Exactly one slot is negative (the C slot).
        let negatives = (0..3)
            .filter(|&j| plan.slot_signs(j)[0] == Sign::Minus)
            .count();
        assert_eq!(negatives, 1);
        // Lane 1 needed a trunk-assisted move (paper §III-C).
        assert!(
            plan.trunk_assisted_moves > 0,
            "Fig. 3 requires trunk reordering; stats: leaf={}, trunk={}",
            plan.leaf_moves,
            plan.trunk_assisted_moves
        );
    }

    #[test]
    fn signs_preserve_apo_multiset_per_lane() {
        let (f, r0, r1) = fig3();
        let chains = chains_of(&f, &[r0, r1]);
        let orig: Vec<Vec<Sign>> = chains
            .iter()
            .map(|c| {
                let mut v: Vec<Sign> = c.leaves.iter().map(|l| l.apo).collect();
                v.sort_by_key(|s| idx(*s));
                v
            })
            .collect();
        let plan = plan_supernode(&f, chains, 2);
        for (lane, want) in orig.iter().enumerate() {
            let mut got: Vec<Sign> = (0..plan.num_slots())
                .map(|j| plan.slots[j][lane].sign)
                .collect();
            got.sort_by_key(|s| idx(*s));
            assert_eq!(&got, want, "lane {lane} APO multiset must survive");
        }
    }

    #[test]
    fn class_restriction_blocks_cross_class_moves() {
        // Lane with a nested RHS subtree:  r = a - (b + c).
        // Classes: a is class +, b and c class -.  A second lane shaped
        // (a' - b') - c' has all classes +.  Leaf counts match (3 vs 3),
        // so a Super-Node forms, but lane 0's class-minus labels {-,-}
        // can only be consumed by minus-APO leaves — which is consistent;
        // the key check is the planner respects per-class availability.
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let at = |k: i64, fb: &mut FunctionBuilder| {
            let q = fb.ptradd_const(p, 8 * k);
            fb.load(ScalarType::I64, q)
        };
        let a = at(0, &mut fb);
        let b = at(1, &mut fb);
        let c = at(2, &mut fb);
        let inner = fb.add(b, c);
        let r0 = fb.sub(a, inner);
        fb.store(p, r0);
        let a2 = at(8, &mut fb);
        let b2 = at(9, &mut fb);
        let c2 = at(10, &mut fb);
        let t2 = fb.sub(a2, b2);
        let r1 = fb.sub(t2, c2);
        let q = fb.ptradd_const(p, 8);
        fb.store(q, r1);
        fb.ret(None);
        let f = fb.finish();
        let chains = chains_of(&f, &[r0, r1]);
        let plan = plan_supernode(&f, chains.clone(), 2);
        // Lane 0: slot 0 (root class +) must receive the only plus-APO
        // leaf in class + — which is `a` (b and c live in class -).
        assert_eq!(plan.slots[0][0].value, a);
        assert_eq!(plan.slots[0][0].sign, Sign::Plus);
        // The two minus leaves of lane 0 fill the remaining slots.
        let lane0_rest: Vec<InstId> = (1..3).map(|j| plan.slots[j][0].value).collect();
        assert!(lane0_rest.contains(&b) && lane0_rest.contains(&c));
    }

    #[test]
    fn lslp_multinode_has_trivial_legality() {
        // All-add chains: every leaf is +/+, any permutation legal, and
        // the planner groups consecutive loads together.
        let mut fb = FunctionBuilder::new(
            "t",
            vec![Param::noalias_ptr("x"), Param::noalias_ptr("y")],
            Type::Void,
        );
        let x = fb.func().param(0);
        let y = fb.func().param(1);
        let ld = |base: InstId, k: i64, fb: &mut FunctionBuilder| {
            let q = fb.ptradd_const(base, 8 * k);
            fb.load(ScalarType::I64, q)
        };
        // lane0: x0 + y0 + x1 ; lane1: y1 + x2 ... deliberately scrambled
        let x0 = ld(x, 0, &mut fb);
        let y0 = ld(y, 0, &mut fb);
        let x1 = ld(x, 1, &mut fb);
        let s = fb.add(x0, y0);
        let r0 = fb.add(s, x1);
        fb.store(x, r0);
        let y1 = ld(y, 1, &mut fb);
        let x2 = ld(x, 2, &mut fb);
        let x3 = ld(x, 3, &mut fb);
        let s2 = fb.add(y1, x2);
        let r1 = fb.add(s2, x3);
        let q = fb.ptradd_const(x, 8);
        fb.store(q, r1);
        fb.ret(None);
        let f = fb.finish();
        let ctx = BlockCtx::compute(&f, f.entry());
        let chains: Vec<LaneChain> = [r0, r1]
            .iter()
            .map(|&r| extract_chain(&f, &ctx, r, false, 32, &|_| false).unwrap())
            .collect();
        let plan = plan_supernode(&f, chains, 2);
        assert_eq!(
            plan.trunk_assisted_moves, 0,
            "all-plus labels: no swaps needed"
        );
        // y0 is grouped with y1 (consecutive), and x-loads pair up too.
        let has_y_slot = (0..3).any(|j| {
            let vals = plan.slot_values(j);
            vals == vec![y0, y1]
        });
        assert!(has_y_slot, "look-ahead should pair the y loads");
    }

    #[test]
    fn leaf_only_planner_respects_original_slot_labels() {
        // With trunk swaps disabled, every slot must receive a leaf whose
        // APO equals the slot's own original label.
        let (f, r0, r1) = fig3();
        let chains = chains_of(&f, &[r0, r1]);
        let plan = plan_supernode_with(&f, chains.clone(), 2, false);
        assert_eq!(plan.trunk_assisted_moves, 0);
        for (lane, chain) in chains.iter().enumerate() {
            for j in 0..plan.num_slots() {
                assert_eq!(
                    plan.slots[j][lane].sign, chain.leaves[j].apo,
                    "lane {lane} slot {j}"
                );
            }
        }
    }
}
