//! Graph cost evaluation (paper Fig. 1 step 4: "Estimate cost of graph").
//!
//! The cost of a graph is the sum over nodes of
//! `vector-cost − scalar-cost`, plus one extract per vectorized scalar
//! whose value is still needed outside the vector code. Negative totals
//! are savings; the pass vectorizes when `total < threshold` (usually 0).

use snslp_cost::CostModel;
use snslp_ir::{Function, InstId, InstKind, Type};

use crate::chain::Sign;
use crate::ctx::BlockCtx;
use crate::graph::{GatherKind, Node, NodeKind, SlpGraph};

/// Itemized cost of one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Per-node deltas, indexed like `graph.nodes`.
    pub node_costs: Vec<i32>,
    /// Total extract cost for externally used vectorized scalars.
    pub extract_cost: i32,
    /// Sum of everything.
    pub total: i32,
}

/// Computes the cost of `graph`.
pub fn evaluate(
    f: &Function,
    ctx: &BlockCtx,
    graph: &SlpGraph,
    model: &CostModel,
) -> CostBreakdown {
    let width = graph.width;
    let node_costs: Vec<i32> = graph
        .nodes
        .iter()
        .map(|n| node_cost(f, n, width, model))
        .collect();

    // Extract costs: a vectorized scalar used by anything that is not
    // itself replaced by vector code needs one lane extract.
    let mut extract_cost = 0;
    for (&inst, &node) in graph.covered.iter() {
        if f.ty(inst) == Type::Void {
            continue; // stores produce no value
        }
        // Reduction roots produce a scalar directly (their node cost
        // already includes the lane-0 extract); interiors are single-use.
        if matches!(graph.nodes[node].kind, NodeKind::Reduction(_)) {
            continue;
        }
        let external = ctx
            .users_of(inst)
            .iter()
            .any(|u| !graph.covered.contains_key(u));
        // A value feeding a gather bundle is also external: the gather
        // builds a vector from *scalars*, so the lane must be extracted.
        let feeds_gather = graph
            .nodes
            .iter()
            .any(|n| matches!(n.kind, NodeKind::Gather { .. }) && n.scalars.contains(&inst));
        if external || feeds_gather {
            extract_cost += model.extract_cost();
        }
    }

    let total: i32 = node_costs.iter().sum::<i32>() + extract_cost;
    CostBreakdown {
        node_costs,
        extract_cost,
        total,
    }
}

fn node_cost(f: &Function, node: &Node, width: u8, model: &CostModel) -> i32 {
    snslp_trace::bump(snslp_trace::Counter::CostModelQueries);
    let w = i32::from(width);
    match &node.kind {
        NodeKind::Gather {
            kind: GatherKind::Constants,
            ..
        } => 0,
        NodeKind::Gather {
            kind: GatherKind::Splat,
            ..
        } => {
            // Splatting a loaded value folds into a broadcast load
            // (`movddup`/`vbroadcasts*`); other splats pay one shuffle.
            if matches!(f.kind(node.scalars[0]), InstKind::Load { .. }) {
                0
            } else {
                model.params().shuffle
            }
        }
        NodeKind::Gather {
            kind: GatherKind::Generic,
            ..
        } => model.gather_cost(width),
        NodeKind::Permute { .. } => model.params().shuffle,
        NodeKind::Load => {
            let scalar: i32 = w * model.params().load;
            model.params().load - scalar
        }
        NodeKind::LoadReversed => {
            let scalar: i32 = w * model.params().load;
            model.params().load + model.params().shuffle - scalar
        }
        NodeKind::Store => {
            let scalar: i32 = w * model.params().store;
            model.params().store - scalar
        }
        NodeKind::Vector => {
            let scalar: i32 = node.scalars.iter().map(|&s| model.compile_cost(f, s)).sum();
            let vec_cost = model.compile_cost_of(
                f,
                f.kind(node.scalars[0]),
                vector_ty(f, node.scalars[0], width),
            );
            vec_cost - scalar
        }
        NodeKind::Alt { ops } => {
            let scalar: i32 = node.scalars.iter().map(|&s| model.compile_cost(f, s)).sum();
            let kind = InstKind::BinaryLanewise {
                ops: ops.clone().into_boxed_slice(),
                lhs: node.scalars[0],
                rhs: node.scalars[0],
            };
            let vec_cost = model.compile_cost_of(f, &kind, vector_ty(f, node.scalars[0], width));
            vec_cost - scalar
        }
        NodeKind::Reduction(info) => {
            // Scalar side: the whole tree of (leaves−1) ops disappears.
            let scalar: i32 = info.tree.iter().map(|&t| model.compile_cost(f, t)).sum();
            // Vector side: combine the partial-sum groups, then log2(VF)
            // shuffle+op steps, one extract, and any leftover scalar ops.
            let op_cost = {
                let kind = InstKind::Binary {
                    op: info.op,
                    lhs: node.scalars[0],
                    rhs: node.scalars[0],
                };
                model.compile_cost_of(f, &kind, vector_ty(f, node.scalars[0], width))
            };
            let groups = node.operands.len() as i32;
            let log2 = (width as f64).log2() as i32;
            let mut vec_cost = (groups - 1) * op_cost;
            vec_cost += log2 * (model.params().shuffle + op_cost);
            vec_cost += model.extract_cost();
            vec_cost += info.leftover.len() as i32 * op_cost;
            vec_cost - scalar
        }
        NodeKind::Super(info) => {
            // Scalar side: every trunk instruction is removed.
            let scalar: i32 = info
                .trunks
                .iter()
                .flatten()
                .map(|&t| model.compile_cost(f, t))
                .sum();
            // Vector side: one combining op per slot beyond the first,
            // plus a fix-up op when slot 0 is not all-plus.
            let vty = vector_ty(f, node.scalars[0], width);
            let mut vec_cost = 0;
            for (j, signs) in info.slot_signs.iter().enumerate() {
                let uniform = signs.iter().all(|&s| s == signs[0]);
                if j == 0 && signs.iter().all(|&s| s == Sign::Plus) {
                    continue; // slot 0 feeds through for free
                }
                // identity ∘ slot0 with sub/div (uniform) or addsub.
                let cost = if uniform {
                    let op = match signs[0] {
                        Sign::Plus => info.family.direct(),
                        Sign::Minus => info.family.inverse(),
                    };
                    model.compile_cost_of(
                        f,
                        &InstKind::Binary {
                            op,
                            lhs: node.scalars[0],
                            rhs: node.scalars[0],
                        },
                        vty,
                    )
                } else {
                    let ops: Vec<snslp_ir::BinOp> = signs
                        .iter()
                        .map(|s| match s {
                            Sign::Plus => info.family.direct(),
                            Sign::Minus => info.family.inverse(),
                        })
                        .collect();
                    model.compile_cost_of(
                        f,
                        &InstKind::BinaryLanewise {
                            ops: ops.into_boxed_slice(),
                            lhs: node.scalars[0],
                            rhs: node.scalars[0],
                        },
                        vty,
                    )
                };
                vec_cost += cost;
            }
            vec_cost - scalar
        }
    }
}

fn vector_ty(f: &Function, scalar: InstId, width: u8) -> Type {
    match f.ty(scalar) {
        Type::Scalar(st) => Type::vector(st, width),
        ty => ty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SlpConfig, SlpMode};
    use crate::graph::build_graph;
    use snslp_ir::{FunctionBuilder, InstId, Param, ScalarType};

    /// Paper Figure 2 kernel (see `graph::tests::fig2`).
    fn fig2() -> (Function, Vec<InstId>) {
        let mut fb = FunctionBuilder::new(
            "fig2",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::noalias_ptr("c"),
                Param::noalias_ptr("d"),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let c = fb.func().param(2);
        let d = fb.func().param(3);
        let ld = |base: InstId, k: i64, fb: &mut FunctionBuilder| {
            let q = fb.ptradd_const(base, 8 * k);
            fb.load(ScalarType::I64, q)
        };
        let b0 = ld(b, 0, &mut fb);
        let c0 = ld(c, 0, &mut fb);
        let d1 = ld(d, 1, &mut fb);
        let t0 = fb.sub(b0, c0);
        let r0 = fb.add(t0, d1);
        let s0 = fb.store(a, r0);
        let d2 = ld(d, 2, &mut fb);
        let c1 = ld(c, 1, &mut fb);
        let b1 = ld(b, 1, &mut fb);
        let t1 = fb.sub(d2, c1);
        let r1 = fb.add(t1, b1);
        let pa1 = fb.ptradd_const(a, 8);
        let s1 = fb.store(pa1, r1);
        fb.ret(None);
        (fb.finish(), vec![s0, s1])
    }

    /// Paper Figure 3 kernel (see `supernode::tests::fig3`).
    fn fig3() -> (Function, Vec<InstId>) {
        let mut fb = FunctionBuilder::new(
            "fig3",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::noalias_ptr("c"),
                Param::noalias_ptr("d"),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let c = fb.func().param(2);
        let d = fb.func().param(3);
        let ld = |base: InstId, k: i64, fb: &mut FunctionBuilder| {
            let q = fb.ptradd_const(base, 8 * k);
            fb.load(ScalarType::I64, q)
        };
        let b0 = ld(b, 0, &mut fb);
        let c0 = ld(c, 0, &mut fb);
        let d0 = ld(d, 0, &mut fb);
        let t0 = fb.sub(b0, c0);
        let r0 = fb.add(t0, d0);
        let s0 = fb.store(a, r0);
        let b1 = ld(b, 1, &mut fb);
        let d1 = ld(d, 1, &mut fb);
        let c1 = ld(c, 1, &mut fb);
        let t1 = fb.add(b1, d1);
        let r1 = fb.sub(t1, c1);
        let pa1 = fb.ptradd_const(a, 8);
        let s1 = fb.store(pa1, r1);
        fb.ret(None);
        (fb.finish(), vec![s0, s1])
    }

    fn cost_of(f: &Function, seeds: &[InstId], mode: SlpMode) -> i32 {
        let ctx = crate::ctx::BlockCtx::compute(f, f.entry());
        let cfg = SlpConfig::new(mode);
        let g = build_graph(f, &ctx, &cfg, seeds);
        evaluate(f, &ctx, &g, &cfg.model).total
    }

    #[test]
    fn fig2_slp_cost_is_zero() {
        // Paper §III-B: "The total cost is 0, which renders the whole SLP
        // graph non-profitable to vectorize."
        let (f, seeds) = fig2();
        assert_eq!(cost_of(&f, &seeds, SlpMode::Slp), 0);
        assert_eq!(cost_of(&f, &seeds, SlpMode::Lslp), 0);
    }

    #[test]
    fn fig2_snslp_cost_is_minus_six() {
        // Paper §III-B: "the total cost is now a profitable −6".
        let (f, seeds) = fig2();
        assert_eq!(cost_of(&f, &seeds, SlpMode::SnSlp), -6);
    }

    #[test]
    fn fig3_slp_cost_is_plus_four() {
        // Paper §III-C: "The total cost of SLP is +4 which is not
        // profitable for vectorization."
        let (f, seeds) = fig3();
        assert_eq!(cost_of(&f, &seeds, SlpMode::Slp), 4);
        assert_eq!(cost_of(&f, &seeds, SlpMode::Lslp), 4);
    }

    #[test]
    fn fig3_snslp_cost_is_minus_six() {
        // Paper §III-C: "The final cost of Super-Node SLP is −6".
        let (f, seeds) = fig3();
        assert_eq!(cost_of(&f, &seeds, SlpMode::SnSlp), -6);
    }

    #[test]
    fn external_use_charges_an_extract() {
        // Same as a trivially vectorizable kernel, but lane 0's sum is
        // also stored scalar elsewhere → one extract.
        let mut fb = FunctionBuilder::new(
            "t",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::noalias_ptr("e"),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let e = fb.func().param(2);
        let b0 = fb.load(ScalarType::I64, b);
        let pb1 = fb.ptradd_const(b, 8);
        let b1 = fb.load(ScalarType::I64, pb1);
        let r0 = fb.add(b0, b0);
        let r1 = fb.add(b1, b1);
        let s0 = fb.store(a, r0);
        let pa1 = fb.ptradd_const(a, 8);
        let s1 = fb.store(pa1, r1);
        fb.store(e, r0); // external scalar use of r0
        fb.ret(None);
        let f = fb.finish();
        let ctx = crate::ctx::BlockCtx::compute(&f, f.entry());
        let cfg = SlpConfig::new(SlpMode::Slp);
        let g = build_graph(&f, &ctx, &cfg, &[s0, s1]);
        let cb = evaluate(&f, &ctx, &g, &cfg.model);
        assert_eq!(cb.extract_cost, 1);
    }
}
