//! Content-addressed compile-artifact cache and the cache-aware module
//! driver used by the `snslpd` compile service.
//!
//! The cache is keyed by *what is being compiled*, not where it came
//! from: a [`CacheKey`] combines the 128-bit stable hash of a function's
//! canonical printed form ([`snslp_ir::stable_function_hash`]) with the
//! 64-bit [`SlpConfig::fingerprint`] of the requested configuration.
//! Resubmitting a module therefore recompiles only functions whose bodies
//! (or config) actually changed — every unchanged function is answered
//! with the previously committed artifact, byte-identical to a cold
//! compile (modulo wall-clock timing, which is zeroed on the cached
//! copy precisely so replays are deterministic).
//!
//! Eviction is LRU over a fixed entry budget. Hit/miss/eviction counts
//! are kept twice, deliberately: process-wide atomics on the cache itself
//! (for the service's report) and the thread-local `snslp-trace` metrics
//! registry counters [`Counter::ArtifactCacheHits`] /
//! [`Counter::ArtifactCacheMisses`] / [`Counter::ArtifactCacheEvictions`]
//! (so per-request metric deltas attribute cache behaviour to the thread
//! that did the lookup).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use snslp_ir::{stable_function_hash, Function, FxHashMap, Module};
use snslp_trace::{bump, Counter};

use crate::config::SlpConfig;
use crate::pass::{run_slp_module_with_threads, FunctionReport};

/// Identity of one compile artifact: function content × configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Stable hash of the function's canonical printed form.
    pub body: u128,
    /// [`SlpConfig::fingerprint`] of the configuration it was compiled
    /// under.
    pub config: u64,
}

impl CacheKey {
    /// Key for compiling `f` under `cfg`.
    pub fn new(f: &Function, cfg: &SlpConfig) -> CacheKey {
        CacheKey {
            body: stable_function_hash(f),
            config: cfg.fingerprint(),
        }
    }
}

/// One committed compile: the rewritten function plus its report.
///
/// The stored report's `elapsed` is [`Duration::ZERO`] — cache replays
/// must be deterministic, and the original compile's wall time is not a
/// property of the artifact.
#[derive(Debug, Clone)]
pub struct CachedCompile {
    /// The function after the pass ran (vector IR committed).
    pub function: Function,
    /// The report the pass produced, with timing zeroed.
    pub report: FunctionReport,
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a compile.
    pub misses: u64,
    /// Entries evicted to stay under capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Key → (last-touched tick, artifact).
    map: FxHashMap<CacheKey, (u64, Arc<CachedCompile>)>,
    tick: u64,
}

/// Thread-safe LRU cache of compile artifacts, shared by every shard of
/// the compile service.
///
/// Values are `Arc`-shared so a hit clones a pointer, not a function
/// body; the interior mutex is held only for map operations, never
/// across a compile.
#[derive(Debug)]
pub struct ArtifactCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ArtifactCache {
    /// Creates a cache holding at most `capacity` artifacts (minimum 1).
    pub fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up an artifact, refreshing its LRU position. Counts a hit or
    /// a miss on both the cache and the calling thread's metrics registry.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedCompile>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((touched, artifact)) => {
                *touched = tick;
                let artifact = artifact.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                bump(Counter::ArtifactCacheHits);
                Some(artifact)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                bump(Counter::ArtifactCacheMisses);
                None
            }
        }
    }

    /// Records `n` function lookups answered *upstream* of this cache
    /// (e.g. the compile service's whole-request memo, which returns a
    /// rendered reply without ever doing per-function lookups). They
    /// count as hits so that the hit rate keeps meaning "fraction of
    /// function lookups answered without compiling".
    pub fn note_upstream_hits(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.hits.fetch_add(n, Ordering::Relaxed);
        snslp_trace::add(Counter::ArtifactCacheHits, n);
    }

    /// Inserts (or replaces) an artifact, evicting the least-recently
    /// used entries if over capacity.
    pub fn insert(&self, key: CacheKey, artifact: Arc<CachedCompile>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, (tick, artifact));
        while inner.map.len() > self.capacity {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (touched, _))| *touched)
                .map(|(k, _)| *k)
            else {
                break;
            };
            inner.map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            bump(Counter::ArtifactCacheEvictions);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

/// Cache-aware variant of
/// [`run_slp_module_with_threads`](crate::run_slp_module_with_threads):
/// functions whose `(body, config)` key is cached are answered from the
/// cache; the rest are compiled in one parallel driver invocation and
/// committed back. Reports come back in module function order either way.
///
/// Duplicate keys *within* the module (the service batches functions from
/// concurrent requests, which may race to submit identical content) are
/// compiled once and fanned out to every occurrence.
pub fn run_slp_module_cached(
    m: &mut Module,
    cfg: &SlpConfig,
    threads: usize,
    cache: &ArtifactCache,
) -> Vec<FunctionReport> {
    let config_fp = cfg.fingerprint();
    let keys: Vec<CacheKey> = m
        .functions()
        .iter()
        .map(|f| CacheKey {
            body: stable_function_hash(f),
            config: config_fp,
        })
        .collect();

    let mut slots: Vec<Option<Arc<CachedCompile>>> = keys.iter().map(|k| cache.get(k)).collect();

    // In-batch dedupe: compile each missing key once.
    let mut to_compile: Vec<usize> = Vec::new();
    let mut seen: FxHashMap<CacheKey, usize> = FxHashMap::default();
    for (i, slot) in slots.iter().enumerate() {
        if slot.is_none() && !seen.contains_key(&keys[i]) {
            seen.insert(keys[i], i);
            to_compile.push(i);
        }
    }

    if !to_compile.is_empty() {
        let mut sub = Module::new(m.name());
        for &i in &to_compile {
            sub.add_function(m.functions()[i].clone());
        }
        let reports = run_slp_module_with_threads(&mut sub, cfg, threads);
        let mut fresh: FxHashMap<CacheKey, Arc<CachedCompile>> = FxHashMap::default();
        for ((&i, function), mut report) in to_compile.iter().zip(sub.into_functions()).zip(reports)
        {
            report.elapsed = Duration::ZERO;
            let artifact = Arc::new(CachedCompile { function, report });
            cache.insert(keys[i], artifact.clone());
            fresh.insert(keys[i], artifact);
        }
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = fresh.get(&keys[i]).cloned();
            }
        }
    }

    let mut out = Vec::with_capacity(slots.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let artifact = slot.expect("every module function resolves to an artifact");
        m.functions_mut()[i] = artifact.function.clone();
        out.push(artifact.report.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlpMode;
    use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};

    fn sample(name: &str, k: i64) -> Function {
        let mut fb = FunctionBuilder::new(name, vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        for lane in 0..4 {
            let addr = fb.ptradd_const(p, lane * 8);
            let v = fb.load(ScalarType::I64, addr);
            let c = fb.const_i64(k);
            let s = fb.add(v, c);
            fb.store(addr, s);
        }
        fb.ret(None);
        fb.finish()
    }

    fn module(names_ks: &[(&str, i64)]) -> Module {
        let mut m = Module::new("m");
        for &(n, k) in names_ks {
            m.add_function(sample(n, k));
        }
        m
    }

    #[test]
    fn warm_run_is_identical_and_all_hits() {
        let cache = ArtifactCache::new(64);
        let cfg = SlpConfig::new(SlpMode::SnSlp);

        let mut cold = module(&[("a", 1), ("b", 2)]);
        let cold_reports = run_slp_module_cached(&mut cold, &cfg, 1, &cache);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);

        let mut warm = module(&[("a", 1), ("b", 2)]);
        let warm_reports = run_slp_module_cached(&mut warm, &cfg, 1, &cache);
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cold.to_string(), warm.to_string());
        for (c, w) in cold_reports.iter().zip(&warm_reports) {
            assert_eq!(c.function, w.function);
            assert_eq!(c.graphs, w.graphs);
            assert_eq!(
                c.remarks.iter().map(|r| r.machine()).collect::<Vec<_>>(),
                w.remarks.iter().map(|r| r.machine()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn body_change_recompiles_only_the_changed_function() {
        let cache = ArtifactCache::new(64);
        let cfg = SlpConfig::new(SlpMode::SnSlp);
        let mut m1 = module(&[("a", 1), ("b", 2)]);
        run_slp_module_cached(&mut m1, &cfg, 1, &cache);

        let mut m2 = module(&[("a", 1), ("b", 3)]);
        run_slp_module_cached(&mut m2, &cfg, 1, &cache);
        let s = cache.stats();
        assert_eq!(s.hits, 1, "unchanged @a should hit");
        assert_eq!(s.misses, 3, "initial two plus changed @b");
    }

    #[test]
    fn config_is_part_of_the_key() {
        let cache = ArtifactCache::new(64);
        let mut m = module(&[("a", 1)]);
        run_slp_module_cached(&mut m, &SlpConfig::new(SlpMode::SnSlp), 1, &cache);
        let mut m = module(&[("a", 1)]);
        run_slp_module_cached(&mut m, &SlpConfig::new(SlpMode::Slp), 1, &cache);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn duplicate_functions_in_one_batch_compile_once() {
        let cache = ArtifactCache::new(64);
        let cfg = SlpConfig::new(SlpMode::SnSlp);
        let mut m = module(&[("a", 1), ("a", 1), ("a", 1)]);
        let reports = run_slp_module_cached(&mut m, &cfg, 1, &cache);
        assert_eq!(reports.len(), 3);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(reports[0].graphs, reports[1].graphs);
        assert_eq!(reports[1].graphs, reports[2].graphs);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let cache = ArtifactCache::new(2);
        let cfg = SlpConfig::new(SlpMode::SnSlp);
        for (n, k) in [("a", 1), ("b", 2)] {
            let mut m = module(&[(n, k)]);
            run_slp_module_cached(&mut m, &cfg, 1, &cache);
        }
        // Touch @a so @b becomes the LRU entry.
        let mut m = module(&[("a", 1)]);
        run_slp_module_cached(&mut m, &cfg, 1, &cache);
        // Inserting @c must evict @b, not @a.
        let mut m = module(&[("c", 3)]);
        run_slp_module_cached(&mut m, &cfg, 1, &cache);
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        let mut m = module(&[("a", 1)]);
        run_slp_module_cached(&mut m, &cfg, 1, &cache);
        assert_eq!(cache.stats().hits, 2, "@a must still be resident");
    }

    #[test]
    fn cached_reports_have_zeroed_elapsed() {
        let cache = ArtifactCache::new(8);
        let cfg = SlpConfig::new(SlpMode::SnSlp);
        let mut m = module(&[("a", 1)]);
        run_slp_module_cached(&mut m, &cfg, 1, &cache);
        let mut m = module(&[("a", 1)]);
        let reports = run_slp_module_cached(&mut m, &cfg, 1, &cache);
        assert_eq!(reports[0].elapsed, Duration::ZERO);
    }
}
