//! The pass driver: the outer loop of Figure 1 (collect seeds, build the
//! graph, estimate cost, vectorize if profitable, repeat), plus the
//! statistics the paper's evaluation reports.

use std::time::{Duration, Instant};

use snslp_ir::printer::{block_name, value_name};
use snslp_ir::FxHashSet;
use snslp_ir::{opt, Function, Module};
use snslp_trace::{
    Counter, DecisionId, MetricsSnapshot, ProfSpan, ReasonCode, Remark, Stage, StageTimer,
};

use crate::codegen;
use crate::config::{SlpConfig, SlpMode};
use crate::cost_eval;
use crate::ctx::BlockCtx;
use crate::dot::graph_to_dot_tagged;
use crate::graph::{build_graph_cached, GatherWhy, SlpGraph};
use crate::score_cache::LruScoreCache;
use crate::seeds::collect_store_seeds;

/// Stable lowercase pass code used in remarks and trace records.
fn pass_code(mode: SlpMode) -> &'static str {
    match mode {
        SlpMode::Slp => "slp",
        SlpMode::Lslp => "lslp",
        SlpMode::SnSlp => "snslp",
    }
}

/// Maps the dominant gather cause of a rejected graph to the remark
/// reason code. Structural blockers get their own codes; benign gathers
/// (constants, out-of-block leaves) mean the graph simply priced too
/// high, which is a cost rejection.
fn missed_reason(graph: &SlpGraph) -> (ReasonCode, String) {
    match graph.dominant_gather_why() {
        Some(why) => {
            let reason = match why {
                GatherWhy::Aliasing => ReasonCode::Aliasing,
                GatherWhy::UnsupportedOpcode => ReasonCode::UnsupportedOpcode,
                GatherWhy::NonConsecutiveLoads | GatherWhy::NonConsecutiveStores => {
                    ReasonCode::NonConsecutive
                }
                _ => ReasonCode::Cost,
            };
            (
                reason,
                format!("gathers={} why={}", graph.num_gather_nodes(), why.code()),
            )
        }
        None => (ReasonCode::Cost, String::new()),
    }
}

/// Statistics for one SLP graph (one seed bundle attempt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Anchor of the decision this graph was built for — the same id is
    /// on the matching remark, profiler span and DOT dump.
    pub decision: DecisionId,
    /// Final DOT source of the graph, decision-stamped. Empty unless
    /// [`SlpConfig::keep_graph_dots`] is set.
    pub dot: String,
    /// Vector width of the seed bundle.
    pub width: u8,
    /// Total graph cost (negative = saving).
    pub cost: i32,
    /// Whether the graph was profitable *and* successfully scheduled.
    pub vectorized: bool,
    /// Total nodes in the graph.
    pub num_nodes: usize,
    /// Nodes that become vector instructions.
    pub num_vector_nodes: usize,
    /// Gather (non-vectorizable) nodes.
    pub num_gather_nodes: usize,
    /// Sizes (chain depths) of the Multi/Super-Nodes in this graph.
    pub super_node_sizes: Vec<u32>,
    /// Leaf-only placements across the graph's Super-Nodes.
    pub leaf_moves: usize,
    /// Trunk-assisted placements across the graph's Super-Nodes.
    pub trunk_assisted_moves: usize,
    /// Arena indices of the instructions codegen emitted for this graph
    /// (empty unless `vectorized`). The join key that lets native PC
    /// maps and hotness profiles attribute machine code back to this
    /// decision.
    pub emitted: Vec<u32>,
}

/// Report for one function run through the pass.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// Function name.
    pub function: String,
    /// Mode the pass ran in.
    pub mode: SlpMode,
    /// One entry per attempted seed group.
    pub graphs: Vec<GraphStats>,
    /// Wall-clock time spent in the pass (the paper's Fig. 11 metric).
    pub elapsed: Duration,
    /// One optimization remark per seed bundle considered (also streamed
    /// to the trace sink when the `remarks` facet is on).
    pub remarks: Vec<Remark>,
    /// Metrics-registry delta attributed to this run: counters (seeds,
    /// bundles, moves, gathers, ...) and per-stage wall time.
    pub metrics: MetricsSnapshot,
}

impl FunctionReport {
    /// Number of graphs actually vectorized.
    pub fn vectorized_graphs(&self) -> usize {
        self.graphs.iter().filter(|g| g.vectorized).count()
    }

    /// Total aggregate Multi/Super-Node size over *vectorized* graphs
    /// (the paper's Fig. 6 / Fig. 9 metric).
    pub fn aggregate_super_node_size(&self) -> u64 {
        self.graphs
            .iter()
            .filter(|g| g.vectorized)
            .flat_map(|g| g.super_node_sizes.iter())
            .map(|&s| u64::from(s))
            .sum()
    }

    /// Predicted cost delta of the *committed* rewrites: the sum of the
    /// cost model's totals over vectorized graphs (negative = predicted
    /// saving per execution of the rewritten region). Rejected graphs do
    /// not contribute — their cost was never taken. This is the static
    /// side the dynamic calibration report (`snslp-bench`) joins against
    /// achieved per-run cycle deltas.
    pub fn predicted_cost(&self) -> i64 {
        self.graphs
            .iter()
            .filter(|g| g.vectorized)
            .map(|g| i64::from(g.cost))
            .sum()
    }

    /// Number of Multi/Super-Nodes in vectorized graphs (Fig. 9's "more
    /// nodes" metric).
    pub fn num_super_nodes(&self) -> usize {
        self.graphs
            .iter()
            .filter(|g| g.vectorized)
            .map(|g| g.super_node_sizes.len())
            .sum()
    }

    /// Average Multi/Super-Node size over vectorized graphs (Fig. 7 /
    /// Fig. 10 metric). `None` when no such node was formed.
    pub fn avg_super_node_size(&self) -> Option<f64> {
        let n = self.num_super_nodes();
        if n == 0 {
            None
        } else {
            Some(self.aggregate_super_node_size() as f64 / n as f64)
        }
    }

    /// Merges another report's graphs into this one (used for module
    /// aggregation).
    pub fn merge(&mut self, other: FunctionReport) {
        self.graphs.extend(other.graphs);
        self.elapsed += other.elapsed;
        self.remarks.extend(other.remarks);
        self.metrics.merge(&other.metrics);
    }
}

impl std::fmt::Display for FunctionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "@{} [{}]: {}/{} graphs vectorized in {:?}",
            self.function,
            self.mode.label(),
            self.vectorized_graphs(),
            self.graphs.len(),
            self.elapsed,
        )?;
        for (i, g) in self.graphs.iter().enumerate() {
            write!(
                f,
                "  graph {i}: width {} cost {:+} -> {}",
                g.width,
                g.cost,
                if g.vectorized { "vectorized" } else { "scalar" },
            )?;
            if !g.super_node_sizes.is_empty() {
                write!(
                    f,
                    " (Super-Nodes {:?}, {} leaf / {} trunk-assisted moves)",
                    g.super_node_sizes, g.leaf_moves, g.trunk_assisted_moves
                )?;
            }
            writeln!(f)?;
        }
        for r in &self.remarks {
            writeln!(f, "  remark: {}", r.human())?;
        }
        Ok(())
    }
}

/// Runs the scalar cleanup pipeline only — the paper's "O3" baseline
/// configuration (all vectorizers disabled).
pub fn optimize_o3(f: &mut Function) -> Duration {
    let start = Instant::now();
    let _t = StageTimer::start(Stage::Cleanup);
    opt::cleanup_pipeline(f);
    start.elapsed()
}

/// Builds the SLP graph for a seed bundle under the configured mode; if
/// the result is not profitable, retries under the weaker modes'
/// bundle-formation rules (SN-SLP ⊇ LSLP ⊇ SLP): committing to a
/// flattened Multi/Super-Node is a greedy choice, and occasionally the
/// unflattened graph prices better. Returns the cheapest graph found.
fn best_graph(
    f: &Function,
    ctx: &BlockCtx,
    cfg: &SlpConfig,
    seeds: &[snslp_ir::InstId],
    cache: &LruScoreCache,
) -> (crate::graph::SlpGraph, cost_eval::CostBreakdown) {
    let graph = {
        let _t = StageTimer::start(Stage::GraphBuild);
        let _p = ProfSpan::enter("graph.build");
        build_graph_cached(f, ctx, cfg, seeds, Some(cache))
    };
    let cost = {
        let _t = StageTimer::start(Stage::CostEval);
        let _p = ProfSpan::enter("cost.evaluate");
        cost_eval::evaluate(f, ctx, &graph, &cfg.model)
    };
    let mut best = (graph, cost);
    if best.1.total < cfg.threshold {
        return best;
    }
    let fallbacks: &[SlpMode] = match cfg.mode {
        SlpMode::SnSlp => &[SlpMode::Lslp, SlpMode::Slp],
        SlpMode::Lslp => &[SlpMode::Slp],
        SlpMode::Slp => &[],
    };
    for &mode in fallbacks {
        let mut sub = cfg.clone();
        sub.mode = mode;
        let g = {
            let _t = StageTimer::start(Stage::GraphBuild);
            let _p = ProfSpan::enter("graph.build");
            // The look-ahead score of a pair is mode-independent, so the
            // fallback rebuilds share the cache: most pair scores the
            // weaker-mode graph needs were already computed.
            build_graph_cached(f, ctx, &sub, seeds, Some(cache))
        };
        let c = {
            let _t = StageTimer::start(Stage::CostEval);
            let _p = ProfSpan::enter("cost.evaluate");
            cost_eval::evaluate(f, ctx, &g, &cfg.model)
        };
        if c.total < best.1.total {
            best = (g, c);
            if best.1.total < cfg.threshold {
                break;
            }
        }
    }
    best
}

/// Runs the SLP pass (in the configured mode) on `f`.
///
/// The function is first cleaned up (simplify + CSE + DCE, the scalar
/// "O3" pipeline), then each block's seed worklist is processed to
/// exhaustion.
///
/// # Panics
///
/// Panics if `cfg.verify_after` is set and a rewrite breaks the IR — that
/// is a bug in the vectorizer, not in user input.
pub fn run_slp(f: &mut Function, cfg: &SlpConfig) -> FunctionReport {
    let start = Instant::now();
    let metrics_before = MetricsSnapshot::current();
    let span = snslp_trace::Span::enter("pass.run_slp");
    span.note("fn", f.name());
    span.note("mode", pass_code(cfg.mode));
    let prof = ProfSpan::enter_with("pass.run_slp", || f.name().to_string());
    {
        let _t = StageTimer::start(Stage::Cleanup);
        let _p = ProfSpan::enter("stage.cleanup");
        opt::cleanup_pipeline(f);
    }

    let mut graphs = Vec::new();
    let mut remarks: Vec<Remark> = Vec::new();
    // Look-ahead scores stay valid while the function is unchanged, so
    // one memo cache serves the whole function; it is cleared after
    // every committed rewrite (and block analyses recomputed) — paper
    // Fig. 1 loops back to step 2 after each vectorized seed group.
    let cache = LruScoreCache::default();
    // Per-function seed ordinal: decisions are minted in consideration
    // order, so the anchor is stable across unrelated value renumbering.
    let mut decision_ord: u32 = 0;
    let blocks: Vec<_> = f.block_ids().collect();
    for block in blocks {
        let bname = block_name(f, block);
        let mut processed: FxHashSet<snslp_ir::InstId> = FxHashSet::default();
        let mut ctx = BlockCtx::compute(f, block);
        loop {
            let target = cfg.model.target().clone();
            let groups = {
                let _t = StageTimer::start(Stage::Seeds);
                let _p = ProfSpan::enter("seeds.collect_stores");
                collect_store_seeds(f, &ctx, |st| target.max_lanes(st), &processed)
            };
            let Some(group) = groups.into_iter().next() else {
                break;
            };
            let site = value_name(f, group.stores[0]);
            let decision = DecisionId::new(
                f.name(),
                &bname,
                decision_ord,
                group.stores[0].index() as u32,
            );
            decision_ord += 1;
            // One profiler span per decision, labelled with its anchor:
            // everything from graph build to codegen for this seed bundle
            // nests inside it, giving per-decision compile time.
            let _dspan = ProfSpan::enter_with("decision", || decision.render());
            // Pre-reorder DOT: the graph vanilla SLP would build for this
            // seed (no chain flattening, no Super-Node reordering).
            if snslp_trace::enabled(snslp_trace::Facet::Dot) && cfg.mode != SlpMode::Slp {
                let mut sub = cfg.clone();
                sub.mode = SlpMode::Slp;
                let pre = build_graph_cached(f, &ctx, &sub, &group.stores, Some(&cache));
                dot_hook(f, &pre, "pre_reorder", f.name(), &bname, &site, &decision);
            }
            let (mut graph, mut cost) = best_graph(f, &ctx, cfg, &group.stores, &cache);
            dot_hook(
                f,
                &graph,
                "post_reorder",
                f.name(),
                &bname,
                &site,
                &decision,
            );
            if cost.total >= cfg.threshold && group.width() > 2 {
                // Retry at half width (like LLVM): a narrower bundle may
                // be profitable where the wide one gathers too much. Mark
                // only the front half processed; the back half re-enters
                // the worklist as its own group.
                let half = group.stores.len() / 2;
                for &s in &group.stores[..half] {
                    processed.insert(s);
                }
                let narrow = &group.stores[..half];
                let (g2, c2) = best_graph(f, &ctx, cfg, narrow, &cache);
                if c2.total < cost.total {
                    graph = g2;
                    cost = c2;
                }
            } else {
                for &s in &group.stores {
                    processed.insert(s);
                }
            }
            dot_hook(f, &graph, "final", f.name(), &bname, &site, &decision);
            let mut stats = GraphStats {
                decision: decision.clone(),
                dot: keep_dot(f, &graph, cfg, f.name(), &bname, &site, &decision),
                width: graph.width,
                cost: cost.total,
                vectorized: false,
                num_nodes: graph.nodes.len(),
                num_vector_nodes: graph.num_vector_nodes(),
                num_gather_nodes: graph.num_gather_nodes(),
                super_node_sizes: graph.super_node_sizes(),
                leaf_moves: graph
                    .nodes
                    .iter()
                    .filter_map(|n| match &n.kind {
                        crate::graph::NodeKind::Super(i) => Some(i.leaf_moves),
                        _ => None,
                    })
                    .sum(),
                trunk_assisted_moves: graph
                    .nodes
                    .iter()
                    .filter_map(|n| match &n.kind {
                        crate::graph::NodeKind::Super(i) => Some(i.trunk_assisted_moves),
                        _ => None,
                    })
                    .sum(),
                emitted: Vec::new(),
            };
            let mut sched_detail: Option<String> = None;
            if cost.total < cfg.threshold {
                let result = {
                    let _t = StageTimer::start(Stage::Codegen);
                    codegen::apply(f, block, &graph)
                };
                match result {
                    Ok(ids) => {
                        stats.vectorized = true;
                        stats.emitted = ids.iter().map(|i| i.index() as u32).collect();
                        snslp_trace::bump(Counter::GraphsVectorized);
                        if cfg.verify_after {
                            if let Err(e) = snslp_ir::verify(f) {
                                panic!("vectorizer broke the IR:\n{e}\n{f}");
                            }
                        }
                        // The rewrite invalidated both the block analyses
                        // and the memoized scores.
                        cache.clear();
                        ctx = BlockCtx::compute(f, block);
                    }
                    Err(e) => {
                        // Scheduling failed; leave the scalar code alone.
                        sched_detail = Some(format!("{e:?}"));
                    }
                }
            }
            let (reason, detail) = if stats.vectorized {
                (ReasonCode::Profitable, String::new())
            } else if let Some(d) = sched_detail {
                (ReasonCode::SchedulingFailure, d)
            } else {
                missed_reason(&graph)
            };
            push_remark(
                &mut remarks,
                Remark {
                    pass: pass_code(cfg.mode).to_string(),
                    function: format!("@{}", f.name()),
                    block: bname.clone(),
                    site: site.clone(),
                    inst: group.stores[0].index() as u32,
                    decision: decision.clone(),
                    seed_kind: "store".to_string(),
                    width: graph.width as usize,
                    vectorized: stats.vectorized,
                    reason,
                    cost: Some(i64::from(cost.total)),
                    detail,
                },
            );
            graphs.push(stats);
        }

        // Horizontal-reduction seeds (the paper's `-slp-vectorize-hor`).
        if cfg.enable_reductions {
            let mut processed_roots: FxHashSet<snslp_ir::InstId> = FxHashSet::default();
            loop {
                // `ctx` is still fresh here: the store loop recomputes it
                // after every rewrite, and this loop does the same below.
                let seeds = {
                    let _t = StageTimer::start(Stage::Seeds);
                    let _p = ProfSpan::enter("seeds.collect_reductions");
                    crate::seeds::collect_reduction_seeds(
                        f,
                        &ctx,
                        cfg.min_reduction_leaves,
                        &processed_roots,
                    )
                };
                let Some(seed) = seeds.into_iter().next() else {
                    break;
                };
                processed_roots.insert(seed.root);
                let site = value_name(f, seed.root);
                let decision =
                    DecisionId::new(f.name(), &bname, decision_ord, seed.root.index() as u32);
                decision_ord += 1;
                let _dspan = ProfSpan::enter_with("decision", || decision.render());
                let Some(elem) = f.ty(seed.root).as_scalar() else {
                    continue;
                };
                let width = cfg.model.target().max_lanes(elem);
                if width < 2 || seed.leaves.len() < width as usize {
                    push_remark(
                        &mut remarks,
                        Remark {
                            pass: pass_code(cfg.mode).to_string(),
                            function: format!("@{}", f.name()),
                            block: bname.clone(),
                            site,
                            inst: seed.root.index() as u32,
                            decision,
                            seed_kind: "reduction".to_string(),
                            width: seed.leaves.len(),
                            vectorized: false,
                            reason: ReasonCode::TooNarrow,
                            cost: None,
                            detail: format!("leaves={} vf={width}", seed.leaves.len()),
                        },
                    );
                    continue;
                }
                let graph = {
                    let _t = StageTimer::start(Stage::GraphBuild);
                    let _p = ProfSpan::enter("graph.build_reduction");
                    crate::graph::build_reduction_graph_cached(
                        f,
                        &ctx,
                        cfg,
                        &seed,
                        width,
                        Some(&cache),
                    )
                };
                let cost = {
                    let _t = StageTimer::start(Stage::CostEval);
                    let _p = ProfSpan::enter("cost.evaluate");
                    cost_eval::evaluate(f, &ctx, &graph, &cfg.model)
                };
                dot_hook(f, &graph, "final", f.name(), &bname, &site, &decision);
                let mut stats = GraphStats {
                    decision: decision.clone(),
                    dot: keep_dot(f, &graph, cfg, f.name(), &bname, &site, &decision),
                    width,
                    cost: cost.total,
                    vectorized: false,
                    num_nodes: graph.nodes.len(),
                    num_vector_nodes: graph.num_vector_nodes(),
                    num_gather_nodes: graph.num_gather_nodes(),
                    super_node_sizes: graph.super_node_sizes(),
                    leaf_moves: 0,
                    trunk_assisted_moves: 0,
                    emitted: Vec::new(),
                };
                let mut sched_detail: Option<String> = None;
                if cost.total < cfg.threshold {
                    let result = {
                        let _t = StageTimer::start(Stage::Codegen);
                        codegen::apply(f, block, &graph)
                    };
                    match result {
                        Ok(ids) => {
                            stats.vectorized = true;
                            stats.emitted = ids.iter().map(|i| i.index() as u32).collect();
                            snslp_trace::bump(Counter::GraphsVectorized);
                            if cfg.verify_after {
                                if let Err(e) = snslp_ir::verify(f) {
                                    panic!("vectorizer broke the IR (reduction):\n{e}\n{f}");
                                }
                            }
                            cache.clear();
                            ctx = BlockCtx::compute(f, block);
                        }
                        Err(e) => {
                            sched_detail = Some(format!("{e:?}"));
                        }
                    }
                }
                let (reason, detail) = if stats.vectorized {
                    (ReasonCode::Profitable, String::new())
                } else if let Some(d) = sched_detail {
                    (ReasonCode::SchedulingFailure, d)
                } else {
                    missed_reason(&graph)
                };
                push_remark(
                    &mut remarks,
                    Remark {
                        pass: pass_code(cfg.mode).to_string(),
                        function: format!("@{}", f.name()),
                        block: bname.clone(),
                        site,
                        inst: seed.root.index() as u32,
                        decision: decision.clone(),
                        seed_kind: "reduction".to_string(),
                        width: width as usize,
                        vectorized: stats.vectorized,
                        reason,
                        cost: Some(i64::from(cost.total)),
                        detail,
                    },
                );
                graphs.push(stats);
            }
        }
    }

    let metrics = MetricsSnapshot::current().delta_since(&metrics_before);
    metrics.emit(f.name());
    if snslp_trace::prof::profiling() {
        let hits = metrics.get(Counter::LookaheadCacheHits);
        let misses = metrics.get(Counter::LookaheadCacheMisses);
        if hits + misses > 0 {
            snslp_trace::prof_counter(
                "lookahead_cache_hit_rate",
                hits as f64 / (hits + misses) as f64,
            );
        }
        snslp_trace::prof_counter(
            "gathers_emitted",
            metrics.get(Counter::GathersEmitted) as f64,
        );
    }
    drop(prof);
    drop(span);
    FunctionReport {
        function: f.name().to_string(),
        mode: cfg.mode,
        graphs,
        elapsed: start.elapsed(),
        remarks,
        metrics,
    }
}

/// Records a remark: counts it, streams it to the trace sink (when the
/// `remarks` facet is on) and retains it on the report.
fn push_remark(remarks: &mut Vec<Remark>, remark: Remark) {
    snslp_trace::bump(Counter::RemarksEmitted);
    remark.emit();
    remarks.push(remark);
}

/// Dumps `graph` as a DOT artifact for one pipeline stage, when the `dot`
/// facet is enabled. Every node label carries the decision anchor.
#[allow(clippy::too_many_arguments)]
fn dot_hook(
    f: &Function,
    graph: &SlpGraph,
    stage: &str,
    fn_name: &str,
    block: &str,
    site: &str,
    decision: &DecisionId,
) {
    if !snslp_trace::enabled(snslp_trace::Facet::Dot) {
        return;
    }
    let title = format!("@{fn_name}/{block}/{site} {stage}");
    let dot = graph_to_dot_tagged(f, graph, &title, Some(decision));
    let file = format!(
        "{}_{}_{}_{stage}.dot",
        sanitize(fn_name),
        sanitize(block),
        sanitize(site),
    );
    snslp_trace::artifact(&format!("dot.{stage}"), &file, &dot);
}

/// Final-stage DOT source retained on [`GraphStats`] when
/// [`SlpConfig::keep_graph_dots`] asks for it; empty otherwise.
#[allow(clippy::too_many_arguments)]
fn keep_dot(
    f: &Function,
    graph: &SlpGraph,
    cfg: &SlpConfig,
    fn_name: &str,
    block: &str,
    site: &str,
    decision: &DecisionId,
) -> String {
    if !cfg.keep_graph_dots {
        return String::new();
    }
    let title = format!("@{fn_name}/{block}/{site} final");
    graph_to_dot_tagged(f, graph, &title, Some(decision))
}

/// Filesystem-safe version of an IR name (`%t12` → `t12`).
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect::<String>()
        .trim_matches('_')
        .to_string()
}

/// Runs the pass over every function of a module, returning one report
/// per function, in module order.
///
/// Functions are independent rewrite units, so they are distributed over
/// `min(num_functions, available_parallelism)` scoped worker threads.
/// The result is deterministic and byte-identical to a serial run:
///
/// * reports come back in module function order regardless of which
///   worker finished first;
/// * trace output is buffered per function ([`snslp_trace::RecordCapture`])
///   and replayed to the session sink in function order, never
///   interleaved;
/// * metrics counters and stage timers are thread-local, so each
///   report's [`MetricsSnapshot`] delta covers exactly its own function.
///
/// Modules with at most one function (and hosts reporting a single CPU)
/// take the plain serial path. Set `SNSLP_THREADS` to override the worker
/// count, or call [`run_slp_module_with_threads`] directly.
pub fn run_slp_module(m: &mut Module, cfg: &SlpConfig) -> Vec<FunctionReport> {
    run_slp_module_with_threads(m, cfg, resolve_threads_env())
}

/// Resolves the worker-thread count: `SNSLP_THREADS` if set to a positive
/// integer, else the host's available parallelism.
///
/// An *invalid* override (non-numeric, zero, negative) is not silently
/// ignored: it produces a one-line warning on stderr plus an
/// [`env.ignored`](snslp_trace::serve::EVENT_ENV_IGNORED) trace event,
/// then falls back to the default.
pub fn resolve_threads_env() -> usize {
    let default = || {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    };
    match std::env::var("SNSLP_THREADS") {
        Err(_) => default(),
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(t) if t > 0 => t,
            _ => {
                eprintln!(
                    "snslp: warning: ignoring invalid SNSLP_THREADS={raw:?} \
                     (expected a positive integer); using default thread count"
                );
                snslp_trace::trace_event!(
                    snslp_trace::serve::EVENT_ENV_IGNORED,
                    "var" => "SNSLP_THREADS",
                    "value" => raw,
                );
                default()
            }
        },
    }
}

/// [`run_slp_module`] with an explicit worker-thread count (`threads = 1`
/// forces the serial path; higher counts are clamped to the number of
/// functions).
pub fn run_slp_module_with_threads(
    m: &mut Module,
    cfg: &SlpConfig,
    threads: usize,
) -> Vec<FunctionReport> {
    let funcs: Vec<&mut Function> = m.functions_mut().iter_mut().collect();
    let workers = threads.max(1).min(funcs.len());
    if workers <= 1 {
        return funcs.into_iter().map(|f| run_slp(f, cfg)).collect();
    }

    let queue = std::sync::Mutex::new(funcs.into_iter().enumerate());
    let done = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in 0..workers {
            let queue = &queue;
            let done = &done;
            s.spawn(move || {
                loop {
                    // Hold the queue lock only for the pop, not the run.
                    let job = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                    let Some((idx, f)) = job else { break };
                    let capture = snslp_trace::RecordCapture::begin();
                    let report = run_slp(f, cfg);
                    let records = capture.finish();
                    done.lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((idx, report, records));
                }
                // One profiler track per worker thread; a no-op when
                // profiling is off or this worker never got a job.
                snslp_trace::prof::flush_thread(&format!("worker-{w}"));
            });
        }
    });

    let mut done = done.into_inner().unwrap_or_else(|e| e.into_inner());
    done.sort_by_key(|&(idx, ..)| idx);
    done.into_iter()
        .map(|(_, report, records)| {
            snslp_trace::replay_records(records);
            report
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::{CostModel, TargetDesc};
    use snslp_interp::{check_equivalent, ArgSpec};
    use snslp_ir::{FunctionBuilder, InstId, Param, ScalarType, Type};

    /// The Fig. 2-style kernel inside a loop over n iteration-pairs.
    fn fig2_loop() -> Function {
        let mut fb = FunctionBuilder::new(
            "fig2_loop",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::noalias_ptr("c"),
                Param::noalias_ptr("d"),
                Param::new("n", Type::scalar(ScalarType::I64)),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let c = fb.func().param(2);
        let d = fb.func().param(3);
        let n = fb.func().param(4);
        fb.counted_loop(n, |fb, i| {
            let sixteen = fb.const_i64(16);
            let base_off = fb.mul(i, sixteen);
            let pa = fb.ptradd(a, base_off);
            let pb = fb.ptradd(b, base_off);
            let pc = fb.ptradd(c, base_off);
            let pd = fb.ptradd(d, base_off);
            let ld = |p: InstId, k: i64, fb: &mut FunctionBuilder| {
                let q = fb.ptradd_const(p, 8 * k);
                fb.load(ScalarType::I64, q)
            };
            // Lane 0: B[i] - C[i] + D[i+1]
            let b0 = ld(pb, 0, fb);
            let c0 = ld(pc, 0, fb);
            let d1 = ld(pd, 1, fb);
            let t0 = fb.sub(b0, c0);
            let r0 = fb.add(t0, d1);
            fb.store(pa, r0);
            // Lane 1: D[i+2] - C[i+1] + B[i+1]
            let d2 = ld(pd, 2, fb);
            let c1 = ld(pc, 1, fb);
            let b1 = ld(pb, 1, fb);
            let t1 = fb.sub(d2, c1);
            let r1 = fb.add(t1, b1);
            let pa1 = fb.ptradd_const(pa, 8);
            fb.store(pa1, r1);
        });
        fb.ret(None);
        fb.finish()
    }

    fn model() -> CostModel {
        CostModel::new(TargetDesc::sse2_like())
    }

    fn i64_array(len: usize, seed: i64) -> ArgSpec {
        ArgSpec::I64Array((0..len as i64).map(|i| i * 13 + seed).collect())
    }

    fn args(n: usize) -> Vec<ArgSpec> {
        let len = 2 * n + 2;
        vec![
            i64_array(len, 0),
            i64_array(len, 3),
            i64_array(len, 7),
            i64_array(len, 11),
            ArgSpec::I64(n as i64),
        ]
    }

    #[test]
    fn snslp_vectorizes_fig2_loop_and_preserves_semantics() {
        let orig = fig2_loop();
        let mut f = fig2_loop();
        let cfg = SlpConfig::new(SlpMode::SnSlp).with_verification();
        let report = run_slp(&mut f, &cfg);
        assert_eq!(report.vectorized_graphs(), 1, "{report:?}\n{f}");
        assert_eq!(report.aggregate_super_node_size(), 2);
        check_equivalent(&orig, &f, &args(8), &model()).unwrap();
    }

    #[test]
    fn slp_and_lslp_leave_fig2_scalar() {
        for mode in [SlpMode::Slp, SlpMode::Lslp] {
            let mut f = fig2_loop();
            let report = run_slp(&mut f, &SlpConfig::new(mode).with_verification());
            assert_eq!(report.vectorized_graphs(), 0, "{mode:?}");
            assert_eq!(report.aggregate_super_node_size(), 0);
        }
    }

    #[test]
    fn snslp_is_faster_in_simulated_cycles() {
        let orig = fig2_loop();
        let mut f = fig2_loop();
        run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
        let (a, b) = check_equivalent(&orig, &f, &args(64), &model()).unwrap();
        assert!(
            b.exec.cycles < a.exec.cycles,
            "vectorized {} !< scalar {}",
            b.exec.cycles,
            a.exec.cycles
        );
    }

    #[test]
    fn report_merging_accumulates() {
        let mut f1 = fig2_loop();
        let mut r1 = run_slp(&mut f1, &SlpConfig::new(SlpMode::SnSlp));
        let mut f2 = fig2_loop();
        let r2 = run_slp(&mut f2, &SlpConfig::new(SlpMode::SnSlp));
        let v = r1.vectorized_graphs() + r2.vectorized_graphs();
        r1.merge(r2);
        assert_eq!(r1.vectorized_graphs(), v);
    }

    #[test]
    fn o3_baseline_only_cleans_up() {
        let mut f = fig2_loop();
        let before = format!("{f}");
        optimize_o3(&mut f);
        // No vector types anywhere.
        let has_vec = f
            .block_ids()
            .flat_map(|b| f.block(b).insts().to_vec())
            .any(|i| f.ty(i).as_vector().is_some());
        assert!(!has_vec);
        let _ = before;
        snslp_ir::verify(&f).unwrap();
    }

    #[test]
    fn report_display_is_informative() {
        let mut f = fig2_loop();
        let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
        let text = report.to_string();
        assert!(text.contains("SN-SLP"), "{text}");
        assert!(text.contains("vectorized"), "{text}");
        assert!(text.contains("Super-Nodes"), "{text}");
    }
}
