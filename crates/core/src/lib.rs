//! # snslp-core
//!
//! The SLP auto-vectorizer family of *Super-Node SLP* (CGO 2019),
//! implemented from scratch on the [`snslp_ir`] intermediate
//! representation:
//!
//! * [`SlpMode::Slp`] — vanilla bottom-up SLP (isomorphic bundles,
//!   commutative operand reordering, alternating add/sub bundles);
//! * [`SlpMode::Lslp`] — LSLP: Multi-Nodes (single-opcode commutative
//!   chains) with look-ahead operand reordering;
//! * [`SlpMode::SnSlp`] — Super-Node SLP: chains including the
//!   operator's *inverse element* (add/sub, mul/div), with APO-based leaf
//!   and trunk reordering.
//!
//! # Examples
//!
//! ```
//! use snslp_core::{run_slp, SlpConfig, SlpMode};
//! use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};
//!
//! // a[0..2] = b[0..2] + c[0..2], written as scalar code.
//! let mut fb = FunctionBuilder::new(
//!     "axpy",
//!     vec![
//!         Param::noalias_ptr("a"),
//!         Param::noalias_ptr("b"),
//!         Param::noalias_ptr("c"),
//!     ],
//!     Type::Void,
//! );
//! let (a, b, c) = (fb.func().param(0), fb.func().param(1), fb.func().param(2));
//! for i in 0..2 {
//!     let pb = fb.ptradd_const(b, 8 * i);
//!     let pc = fb.ptradd_const(c, 8 * i);
//!     let pa = fb.ptradd_const(a, 8 * i);
//!     let x = fb.load(ScalarType::F64, pb);
//!     let y = fb.load(ScalarType::F64, pc);
//!     let s = fb.add(x, y);
//!     fb.store(pa, s);
//! }
//! fb.ret(None);
//! let mut f = fb.finish();
//!
//! let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
//! assert_eq!(report.vectorized_graphs(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod chain;
pub mod codegen;
pub mod config;
pub mod cost_eval;
pub mod ctx;
pub mod dot;
pub mod graph;
pub mod lookahead;
pub mod pass;
pub mod score_cache;
pub mod seeds;
pub mod supernode;

pub use cache::{run_slp_module_cached, ArtifactCache, CacheKey, CacheStats, CachedCompile};
pub use chain::{extract_chain, LaneChain, LaneLeaf, Sign};
pub use codegen::CodegenError;
pub use config::{SlpConfig, SlpMode};
pub use cost_eval::{evaluate, CostBreakdown};
pub use ctx::BlockCtx;
pub use dot::{graph_to_dot, graph_to_dot_tagged};
pub use graph::{
    build_graph, build_graph_cached, build_reduction_graph, build_reduction_graph_cached,
    GatherKind, GatherWhy, Node, NodeKind, ReductionInfo, SlpGraph, SuperInfo,
};
pub use pass::{
    optimize_o3, resolve_threads_env, run_slp, run_slp_module, run_slp_module_with_threads,
    FunctionReport, GraphStats,
};
pub use score_cache::LruScoreCache;
pub use seeds::{collect_reduction_seeds, collect_store_seeds, ReductionSeed, SeedGroup};
pub use snslp_trace::DecisionId;
pub use supernode::{
    plan_supernode, plan_supernode_cached, plan_supernode_with, SlotChoice, SuperNodePlan,
};
