//! Graphviz DOT rendering of SLP graphs.
//!
//! Used by the `dot` trace facet (the pass dumps graphs at the
//! pre-reorder, post-reorder and final stages, see [`crate::pass`]) and by
//! the `graphdump` diagnostic tool. The output is plain `dot` language:
//! pipe it through `dot -Tsvg` to visualize.

use std::fmt::Write as _;

use snslp_ir::printer::value_name;
use snslp_ir::Function;
use snslp_trace::DecisionId;

use crate::chain::Sign;
use crate::graph::{GatherKind, NodeKind, SlpGraph};

/// Renders `graph` as a DOT digraph named `title`. Vectorizable nodes are
/// boxes; gathers are red ovals annotated with their cause; edges point
/// from a node to its operand bundles, labelled with the operand index.
pub fn graph_to_dot(f: &Function, graph: &SlpGraph, title: &str) -> String {
    graph_to_dot_tagged(f, graph, title, None)
}

/// [`graph_to_dot`] with a decision anchor: every node label carries a
/// trailing `d=<decision>#n<i>` line, so a DOT dump can be joined back to
/// the remark, profiler span and report cost entry minted for the same
/// seed bundle.
pub fn graph_to_dot_tagged(
    f: &Function,
    graph: &SlpGraph,
    title: &str,
    decision: Option<&DecisionId>,
) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(out, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(
        out,
        "  label=\"{} (width {})\";",
        escape(title),
        graph.width
    );
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for (i, node) in graph.nodes.iter().enumerate() {
        let lanes: Vec<String> = node.scalars.iter().map(|&s| value_name(f, s)).collect();
        let (shape, color, kind) = node_style(&node.kind);
        let anchor = match decision {
            Some(id) => format!("\\nd={}#n{i}", escape(&id.render())),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  n{i} [shape={shape}, color={color}, label=\"#{i} {}\\n[{}]{anchor}\"];",
            escape(&kind),
            escape(&lanes.join(", ")),
        );
    }
    for (i, node) in graph.nodes.iter().enumerate() {
        for (j, &op) in node.operands.iter().enumerate() {
            let _ = writeln!(out, "  n{i} -> n{op} [label=\"{j}\"];");
        }
    }
    out.push_str("}\n");
    out
}

/// `(shape, color, label)` for one node kind.
fn node_style(kind: &NodeKind) -> (&'static str, &'static str, String) {
    match kind {
        NodeKind::Vector => ("box", "black", "Vector".to_string()),
        NodeKind::Load => ("box", "blue", "Load".to_string()),
        NodeKind::LoadReversed => ("box", "blue", "LoadReversed".to_string()),
        NodeKind::Store => ("box", "blue", "Store".to_string()),
        NodeKind::Alt { ops } => {
            let ops: Vec<String> = ops.iter().map(|o| format!("{o:?}")).collect();
            ("box", "purple", format!("Alt[{}]", ops.join(",")))
        }
        NodeKind::Permute { mask } => ("box", "orange", format!("Permute{mask:?}")),
        NodeKind::Reduction(info) => (
            "box",
            "darkgreen",
            format!("Reduction({:?}, {} interior)", info.op, info.tree.len()),
        ),
        NodeKind::Super(info) => {
            let signs: Vec<String> = info
                .slot_signs
                .iter()
                .map(|slot| {
                    slot.iter()
                        .map(|s| match s {
                            Sign::Plus => '+',
                            Sign::Minus => '-',
                        })
                        .collect()
                })
                .collect();
            (
                "box3d",
                "darkgreen",
                format!(
                    "Super(size {}, slots {}, leaf {}, trunk {})",
                    info.size(),
                    signs.join("|"),
                    info.leaf_moves,
                    info.trunk_assisted_moves,
                ),
            )
        }
        NodeKind::Gather { kind, why } => {
            let kind = match kind {
                GatherKind::Constants => "consts",
                GatherKind::Splat => "splat",
                GatherKind::Generic => "generic",
            };
            ("oval", "red", format!("Gather({kind}: {})", why.code()))
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SlpConfig, SlpMode};
    use crate::ctx::BlockCtx;
    use crate::graph::build_graph;
    use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};

    fn tiny() -> (Function, Vec<snslp_ir::InstId>) {
        let mut fb = FunctionBuilder::new(
            "t",
            vec![Param::noalias_ptr("a"), Param::noalias_ptr("b")],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let b0 = fb.load(ScalarType::I64, b);
        let pb1 = fb.ptradd_const(b, 8);
        let b1 = fb.load(ScalarType::I64, pb1);
        let r0 = fb.add(b0, b0);
        let r1 = fb.add(b1, b1);
        let s0 = fb.store(a, r0);
        let pa1 = fb.ptradd_const(a, 8);
        let s1 = fb.store(pa1, r1);
        fb.ret(None);
        (fb.finish(), vec![s0, s1])
    }

    #[test]
    fn dot_output_is_well_formed() {
        let (f, seeds) = tiny();
        let ctx = BlockCtx::compute(&f, f.entry());
        let cfg = SlpConfig::new(SlpMode::Slp);
        let g = build_graph(&f, &ctx, &cfg, &seeds);
        let dot = graph_to_dot(&f, &g, "tiny/slp");
        assert!(dot.starts_with("digraph \"tiny/slp\" {"));
        assert!(dot.trim_end().ends_with('}'));
        // One DOT node per graph node, and the root is a Store box.
        for i in 0..g.nodes.len() {
            assert!(dot.contains(&format!("n{i} [")), "{dot}");
        }
        assert!(dot.contains("Store"));
        // Edges reference declared nodes only.
        assert!(dot.contains("n0 -> n"));
    }

    #[test]
    fn tagged_output_anchors_every_node_to_the_decision() {
        let (f, seeds) = tiny();
        let ctx = BlockCtx::compute(&f, f.entry());
        let cfg = SlpConfig::new(SlpMode::Slp);
        let g = build_graph(&f, &ctx, &cfg, &seeds);
        let id = DecisionId::new("t", "entry", 0, seeds[0].index() as u32);
        let dot = graph_to_dot_tagged(&f, &g, "tiny/slp", Some(&id));
        for i in 0..g.nodes.len() {
            assert!(
                dot.contains(&format!("d={}#n{i}", id.render())),
                "node {i} missing anchor in:\n{dot}"
            );
        }
        // The untagged form stays anchor-free.
        assert!(!graph_to_dot(&f, &g, "tiny/slp").contains("d=@"));
    }

    #[test]
    fn gather_nodes_carry_their_cause() {
        // Non-consecutive stores gather with a cause in the label.
        let (f, seeds) = tiny();
        let ctx = BlockCtx::compute(&f, f.entry());
        let cfg = SlpConfig::new(SlpMode::Slp);
        // Reverse the seed order: stores are consecutive in reverse, so
        // the bundle is non-consecutive forward → store gather.
        let rev: Vec<_> = seeds.iter().rev().copied().collect();
        let g = build_graph(&f, &ctx, &cfg, &rev);
        let dot = graph_to_dot(&f, &g, "rev");
        assert!(dot.contains("Gather("), "{dot}");
        assert!(dot.contains("non-consecutive-stores"), "{dot}");
    }
}
