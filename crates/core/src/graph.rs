//! The SLP graph: bundles of isomorphic scalars and their operand
//! relations (paper Fig. 1, step 3 — the part SN-SLP modifies).

use snslp_ir::FxHashMap;
use snslp_ir::{BinOp, Function, InstId, InstKind, OpFamily};

use crate::chain::{extract_chain, LaneChain, Sign};
use crate::config::{SlpConfig, SlpMode};
use crate::ctx::BlockCtx;
use crate::lookahead::score_pair_with;
use crate::score_cache::LruScoreCache;
use crate::supernode::{plan_supernode_cached, SuperNodePlan};

/// Index of a node within an [`SlpGraph`].
pub type NodeId = usize;

/// *How* a gather node is materialized (selects its cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherKind {
    /// All lanes are constants — materialized as a constant vector.
    Constants,
    /// All lanes are the same value — materialized as a splat.
    Splat,
    /// Arbitrary scalars — one insert per lane.
    Generic,
}

/// *Why* a bundle had to gather instead of vectorizing. Recorded on every
/// gather node so optimization remarks can report the dominant cause of a
/// missed vectorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GatherWhy {
    /// Recursion hit the configured depth limit.
    DepthLimit,
    /// Lanes have different types (or operand types disagree).
    TypeMismatch,
    /// A lane is not an instruction of the seed block (param, const,
    /// other-block value).
    NotInBlock,
    /// The same value appears in several lanes.
    DuplicateLanes,
    /// A lane is already claimed by another vector bundle (and the bundle
    /// is not a pure permutation of it).
    Claimed,
    /// Two lanes depend on each other.
    Dependence,
    /// Lanes mix opcodes that cannot form a Vector/Alt/Super bundle.
    OpcodeMismatch,
    /// The opcode itself is not vectorizable (call, ptradd, ...).
    UnsupportedOpcode,
    /// Loads are not consecutive in either lane order.
    NonConsecutiveLoads,
    /// Stores are not adjacent.
    NonConsecutiveStores,
    /// A may-aliasing memory operation sits between the bundled accesses.
    Aliasing,
}

impl GatherWhy {
    /// Stable kebab-case code used in trace records and remark details.
    pub fn code(self) -> &'static str {
        match self {
            GatherWhy::DepthLimit => "depth-limit",
            GatherWhy::TypeMismatch => "type-mismatch",
            GatherWhy::NotInBlock => "not-in-block",
            GatherWhy::DuplicateLanes => "duplicate-lanes",
            GatherWhy::Claimed => "claimed",
            GatherWhy::Dependence => "dependence",
            GatherWhy::OpcodeMismatch => "opcode-mismatch",
            GatherWhy::UnsupportedOpcode => "unsupported-opcode",
            GatherWhy::NonConsecutiveLoads => "non-consecutive-loads",
            GatherWhy::NonConsecutiveStores => "non-consecutive-stores",
            GatherWhy::Aliasing => "aliasing",
        }
    }

    /// Severity when selecting the *dominant* cause for a missed-remark:
    /// higher wins. Structural reasons (aliasing, unsupported opcodes,
    /// broken memory shapes) outrank benign leaf gathers (constants,
    /// values defined elsewhere) that appear in profitable graphs too.
    pub fn severity(self) -> u8 {
        match self {
            GatherWhy::Aliasing => 5,
            GatherWhy::UnsupportedOpcode => 4,
            GatherWhy::NonConsecutiveLoads | GatherWhy::NonConsecutiveStores => 3,
            GatherWhy::OpcodeMismatch => 2,
            GatherWhy::Dependence | GatherWhy::DuplicateLanes | GatherWhy::Claimed => 1,
            GatherWhy::DepthLimit | GatherWhy::TypeMismatch | GatherWhy::NotInBlock => 0,
        }
    }
}

/// What a node packs.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// Isomorphic vectorizable bundle (same opcode: binary, unary, cmp,
    /// select).
    Vector,
    /// Consecutive loads → one vector load.
    Load,
    /// Loads consecutive in *reverse* lane order → one vector load plus a
    /// lane-reversing shuffle.
    LoadReversed,
    /// Adjacent stores → one vector store (always the graph root).
    Store,
    /// Alternating ops from one family across lanes, e.g. `[add, sub]`
    /// (vectorizable with the `addsub` penalty, paper Fig. 3(c)).
    Alt {
        /// Per-lane operators.
        ops: Vec<BinOp>,
    },
    /// A Multi-Node (LSLP) or Super-Node (SN-SLP): per-lane chains
    /// flattened and reordered; operand `j` is the slot-`j` bundle.
    Super(SuperInfo),
    /// A bundle that is a lane permutation of an already-vectorized
    /// bundle — one shuffle of that node's vector (operand 0).
    Permute {
        /// Output lane `i` is lane `mask[i]` of the source node.
        mask: Vec<u8>,
    },
    /// A horizontal reduction (paper §II-B's reduction-tree seeds): the
    /// operand bundles are the leaf groups; the vector partial sums are
    /// combined and reduced to one scalar with `log2(VF)` shuffles,
    /// replacing the scalar tree.
    Reduction(ReductionInfo),
    /// Non-vectorizable group, gathered from scalars.
    Gather {
        /// How the gather is materialized (drives the cost model).
        kind: GatherKind,
        /// Why the group could not be vectorized (drives remarks).
        why: GatherWhy,
    },
}

/// Super-Node payload retained for cost evaluation, code generation, and
/// the paper's node-size statistics.
#[derive(Debug, Clone)]
pub struct SuperInfo {
    /// Operator family.
    pub family: OpFamily,
    /// Per-lane trunk instructions (all are replaced by the vector code).
    pub trunks: Vec<Vec<InstId>>,
    /// Per-slot, per-lane signs: `slot_signs[j][lane]`.
    pub slot_signs: Vec<Vec<Sign>>,
    /// Placements achieved by plain leaf moves.
    pub leaf_moves: usize,
    /// Placements that required a trunk swap.
    pub trunk_assisted_moves: usize,
}

impl SuperInfo {
    /// The paper's node size (chain depth per lane).
    pub fn size(&self) -> u32 {
        self.trunks[0].len() as u32
    }
}

/// Payload of a horizontal-reduction root node.
#[derive(Debug, Clone)]
pub struct ReductionInfo {
    /// The reduction opcode.
    pub op: BinOp,
    /// Interior tree instructions (including the root), all replaced.
    pub tree: Vec<InstId>,
    /// Leaves that did not fit a full vector group and are reduced
    /// scalar-ly into the final value.
    pub leftover: Vec<InstId>,
}

/// One SLP graph node: a group of scalars considered for one vector
/// instruction.
#[derive(Debug, Clone)]
pub struct Node {
    /// Per-lane scalar values. For [`NodeKind::Super`] these are the lane
    /// *roots*; the full trunk is in [`SuperInfo::trunks`].
    pub scalars: Vec<InstId>,
    /// Node classification.
    pub kind: NodeKind,
    /// Operand nodes, in operand order.
    pub operands: Vec<NodeId>,
}

impl Node {
    /// Whether this node becomes a vector instruction (anything but a
    /// gather).
    pub fn is_vectorizable(&self) -> bool {
        !matches!(self.kind, NodeKind::Gather { .. })
    }
}

/// The SLP graph for one seed bundle.
#[derive(Debug, Clone)]
pub struct SlpGraph {
    /// All nodes; index 0 is the root (the seed bundle).
    pub nodes: Vec<Node>,
    /// Vector width (number of lanes).
    pub width: u8,
    /// Scalar instruction → node covering it as a vector lane (includes
    /// Super-Node trunk instructions).
    pub covered: FxHashMap<InstId, NodeId>,
}

impl SlpGraph {
    /// The root node id.
    pub fn root(&self) -> NodeId {
        0
    }

    /// Nodes that become vector instructions.
    pub fn num_vector_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_vectorizable()).count()
    }

    /// Gather nodes.
    pub fn num_gather_nodes(&self) -> usize {
        self.nodes.len() - self.num_vector_nodes()
    }

    /// Sizes (chain depths) of all Multi/Super-Nodes in the graph.
    pub fn super_node_sizes(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Super(info) => Some(info.size()),
                _ => None,
            })
            .collect()
    }

    /// The most severe cause among this graph's gather nodes, if any —
    /// the reason an optimization remark reports for a missed bundle.
    pub fn dominant_gather_why(&self) -> Option<GatherWhy> {
        self.nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Gather { why, .. } => Some(why),
                _ => None,
            })
            .max_by_key(|w| (w.severity(), *w))
    }

    /// The lane of `inst` within its covering node, if covered.
    pub fn lane_of(&self, inst: InstId) -> Option<(NodeId, usize)> {
        let &node = self.covered.get(&inst)?;
        match &self.nodes[node].kind {
            // Reduction roots produce a *scalar*, not a vector lane; code
            // generation substitutes the reduced value directly.
            NodeKind::Reduction(_) => None,
            NodeKind::Super(info) => {
                // Trunk instructions map to the lane whose trunk contains
                // them; the vector value represents the lane roots.
                info.trunks
                    .iter()
                    .position(|t| t.contains(&inst))
                    .map(|lane| (node, lane))
            }
            _ => self.nodes[node]
                .scalars
                .iter()
                .position(|&s| s == inst)
                .map(|lane| (node, lane)),
        }
    }
}

/// Builds the SLP graph for `seeds` (a bundle of adjacent stores).
pub fn build_graph(f: &Function, ctx: &BlockCtx, cfg: &SlpConfig, seeds: &[InstId]) -> SlpGraph {
    build_graph_cached(f, ctx, cfg, seeds, None)
}

/// [`build_graph`] with an optional memoized look-ahead score cache,
/// shared across the graphs the pass builds over one unchanged function
/// (mode fallbacks and half-width retries re-score the same pairs).
pub fn build_graph_cached(
    f: &Function,
    ctx: &BlockCtx,
    cfg: &SlpConfig,
    seeds: &[InstId],
    cache: Option<&LruScoreCache>,
) -> SlpGraph {
    let mut b = GraphBuilder {
        f,
        ctx,
        cfg,
        cache,
        nodes: Vec::new(),
        bundle_map: FxHashMap::default(),
        covered: FxHashMap::default(),
    };
    let root = b.build_bundle(seeds.to_vec(), 0);
    debug_assert_eq!(root, 0);
    SlpGraph {
        nodes: b.nodes,
        width: seeds.len() as u8,
        covered: b.covered,
    }
}

/// Builds the SLP graph for a horizontal-reduction seed: a
/// [`NodeKind::Reduction`] root whose operands are the leaf groups
/// (chunks of `width` leaves).
pub fn build_reduction_graph(
    f: &Function,
    ctx: &BlockCtx,
    cfg: &SlpConfig,
    seed: &crate::seeds::ReductionSeed,
    width: u8,
) -> SlpGraph {
    build_reduction_graph_cached(f, ctx, cfg, seed, width, None)
}

/// [`build_reduction_graph`] with an optional memoized look-ahead score
/// cache (see [`build_graph_cached`]).
pub fn build_reduction_graph_cached(
    f: &Function,
    ctx: &BlockCtx,
    cfg: &SlpConfig,
    seed: &crate::seeds::ReductionSeed,
    width: u8,
    cache: Option<&LruScoreCache>,
) -> SlpGraph {
    let mut b = GraphBuilder {
        f,
        ctx,
        cfg,
        cache,
        nodes: Vec::new(),
        bundle_map: FxHashMap::default(),
        covered: FxHashMap::default(),
    };
    let full_groups = seed.leaves.len() / width as usize;
    let leftover: Vec<InstId> = seed.leaves[full_groups * width as usize..].to_vec();
    let root = b.add_node(Node {
        scalars: vec![seed.root],
        kind: NodeKind::Reduction(ReductionInfo {
            op: seed.op,
            tree: seed.tree.clone(),
            leftover,
        }),
        operands: Vec::new(),
    });
    debug_assert_eq!(root, 0);
    // The tree is covered (replaced); map every interior instruction to
    // the root node.
    for &t in &seed.tree {
        b.covered.insert(t, root);
    }
    for chunk in seed.leaves.chunks_exact(width as usize) {
        let child = b.build_bundle(chunk.to_vec(), 1);
        b.nodes[root].operands.push(child);
    }
    SlpGraph {
        nodes: b.nodes,
        width,
        covered: b.covered,
    }
}

struct GraphBuilder<'a> {
    f: &'a Function,
    ctx: &'a BlockCtx,
    cfg: &'a SlpConfig,
    cache: Option<&'a LruScoreCache>,
    nodes: Vec<Node>,
    bundle_map: FxHashMap<Vec<InstId>, NodeId>,
    covered: FxHashMap<InstId, NodeId>,
}

impl GraphBuilder<'_> {
    fn add_node(&mut self, node: Node) -> NodeId {
        let id = self.nodes.len();
        self.bundle_map.insert(node.scalars.clone(), id);
        self.nodes.push(node);
        id
    }

    fn gather(&mut self, bundle: Vec<InstId>, why: GatherWhy) -> NodeId {
        let all_const = bundle
            .iter()
            .all(|&v| matches!(self.f.kind(v), InstKind::Const(_)));
        let all_same = bundle.iter().all(|&v| v == bundle[0]);
        let kind = if all_const {
            GatherKind::Constants
        } else if all_same {
            GatherKind::Splat
        } else {
            GatherKind::Generic
        };
        snslp_trace::bump(snslp_trace::Counter::GathersEmitted);
        snslp_trace::trace_event!(
            "graph.gather",
            "why" => why.code(),
            "width" => bundle.len(),
        );
        self.add_node(Node {
            scalars: bundle,
            kind: NodeKind::Gather { kind, why },
            operands: Vec::new(),
        })
    }

    fn mark_covered(&mut self, insts: &[InstId], node: NodeId) {
        for &i in insts {
            self.covered.insert(i, node);
        }
    }

    fn lookahead_depth(&self) -> u32 {
        // Vanilla SLP reorders commutative operands with opcode-level
        // matching only; LSLP and SN-SLP look deeper.
        match self.cfg.mode {
            SlpMode::Slp => 0,
            _ => self.cfg.lookahead_depth,
        }
    }

    /// The core recursion (paper Listing 1, `buildGraph`).
    fn build_bundle(&mut self, bundle: Vec<InstId>, depth: u32) -> NodeId {
        if let Some(&n) = self.bundle_map.get(&bundle) {
            return n;
        }
        snslp_trace::bump(snslp_trace::Counter::BundlesAttempted);
        if depth > self.cfg.max_depth {
            return self.gather(bundle, GatherWhy::DepthLimit);
        }
        // Uniform type?
        let ty = self.f.ty(bundle[0]);
        if bundle.iter().any(|&v| self.f.ty(v) != ty) {
            return self.gather(bundle, GatherWhy::TypeMismatch);
        }
        // Every lane must be a distinct instruction of this block that is
        // not already claimed by another vector bundle.
        let all_block_insts = bundle.iter().all(|&v| self.ctx.in_block(v));
        let distinct = bundle
            .iter()
            .enumerate()
            .all(|(i, &v)| !bundle[..i].contains(&v));
        let unclaimed = bundle.iter().all(|&v| !self.covered.contains_key(&v));
        if !all_block_insts || !distinct || !unclaimed {
            // A bundle whose lanes permute an existing vector bundle is a
            // single shuffle, not a gather.
            if let Some(node) = self.try_permute(&bundle) {
                return node;
            }
            let why = if !all_block_insts {
                GatherWhy::NotInBlock
            } else if !distinct {
                GatherWhy::DuplicateLanes
            } else {
                GatherWhy::Claimed
            };
            return self.gather(bundle, why);
        }
        // Lanes must be mutually independent.
        for (i, &a) in bundle.iter().enumerate() {
            for &b in &bundle[..i] {
                if self.ctx.depends_on(self.f, a, b) || self.ctx.depends_on(self.f, b, a) {
                    return self.gather(bundle, GatherWhy::Dependence);
                }
            }
        }

        match self.f.kind(bundle[0]) {
            InstKind::Load { .. } => self.build_load_bundle(bundle),
            InstKind::Store { .. } => self.build_store_bundle(bundle, depth),
            InstKind::Binary { .. } => self.build_binary_bundle(bundle, depth),
            InstKind::Unary { op, .. } => {
                let op = *op;
                let same = bundle
                    .iter()
                    .all(|&v| matches!(self.f.kind(v), InstKind::Unary { op: o, .. } if *o == op));
                if !same {
                    return self.gather(bundle, GatherWhy::OpcodeMismatch);
                }
                let operands: Vec<InstId> = bundle
                    .iter()
                    .map(|&v| self.f.kind(v).operands()[0])
                    .collect();
                let node = self.add_node(Node {
                    scalars: bundle.clone(),
                    kind: NodeKind::Vector,
                    operands: Vec::new(),
                });
                self.mark_covered(&bundle, node);
                let opnode = self.build_bundle(operands, depth + 1);
                self.nodes[node].operands.push(opnode);
                node
            }
            InstKind::Cast { kind, .. } => {
                let kind = *kind;
                let same = bundle.iter().all(
                    |&v| matches!(self.f.kind(v), InstKind::Cast { kind: k, .. } if *k == kind),
                );
                if !same {
                    return self.gather(bundle, GatherWhy::OpcodeMismatch);
                }
                let operands: Vec<InstId> = bundle
                    .iter()
                    .map(|&v| self.f.kind(v).operands()[0])
                    .collect();
                let opty = self.f.ty(operands[0]);
                if operands.iter().any(|&v| self.f.ty(v) != opty) {
                    return self.gather(bundle, GatherWhy::TypeMismatch);
                }
                let node = self.add_node(Node {
                    scalars: bundle.clone(),
                    kind: NodeKind::Vector,
                    operands: Vec::new(),
                });
                self.mark_covered(&bundle, node);
                let o = self.build_bundle(operands, depth + 1);
                self.nodes[node].operands.push(o);
                node
            }
            InstKind::Select { .. } => {
                let same = bundle
                    .iter()
                    .all(|&v| matches!(self.f.kind(v), InstKind::Select { .. }));
                if !same {
                    return self.gather(bundle, GatherWhy::OpcodeMismatch);
                }
                // The per-lane conditions become an i32 mask vector (a
                // splat when all lanes share one condition).
                let field = |b: &Self, i: usize| -> Vec<InstId> {
                    bundle.iter().map(|&v| b.f.kind(v).operands()[i]).collect()
                };
                let conds = field(self, 0);
                let on_true = field(self, 1);
                let on_false = field(self, 2);
                let node = self.add_node(Node {
                    scalars: bundle.clone(),
                    kind: NodeKind::Vector,
                    operands: Vec::new(),
                });
                self.mark_covered(&bundle, node);
                let c = self.build_bundle(conds, depth + 1);
                let t = self.build_bundle(on_true, depth + 1);
                let e = self.build_bundle(on_false, depth + 1);
                self.nodes[node].operands.push(c);
                self.nodes[node].operands.push(t);
                self.nodes[node].operands.push(e);
                node
            }
            InstKind::Cmp { pred, .. } => {
                let pred = *pred;
                let same = bundle.iter().all(
                    |&v| matches!(self.f.kind(v), InstKind::Cmp { pred: p, .. } if *p == pred),
                );
                if !same {
                    return self.gather(bundle, GatherWhy::OpcodeMismatch);
                }
                // Operand types must agree across lanes (the uniform-type
                // check above only saw the i32 outputs).
                let lhs: Vec<InstId> = bundle
                    .iter()
                    .map(|&v| self.f.kind(v).operands()[0])
                    .collect();
                let rhs: Vec<InstId> = bundle
                    .iter()
                    .map(|&v| self.f.kind(v).operands()[1])
                    .collect();
                let opty = self.f.ty(lhs[0]);
                if lhs.iter().chain(&rhs).any(|&v| self.f.ty(v) != opty) {
                    return self.gather(bundle, GatherWhy::TypeMismatch);
                }
                let node = self.add_node(Node {
                    scalars: bundle.clone(),
                    kind: NodeKind::Vector,
                    operands: Vec::new(),
                });
                self.mark_covered(&bundle, node);
                let l = self.build_bundle(lhs, depth + 1);
                let r = self.build_bundle(rhs, depth + 1);
                self.nodes[node].operands.push(l);
                self.nodes[node].operands.push(r);
                node
            }
            _ => self.gather(bundle, GatherWhy::UnsupportedOpcode),
        }
    }

    fn build_load_bundle(&mut self, bundle: Vec<InstId>) -> NodeId {
        let all_loads = bundle
            .iter()
            .all(|&v| matches!(self.f.kind(v), InstKind::Load { .. }));
        if !all_loads {
            return self.gather(bundle, GatherWhy::OpcodeMismatch);
        }
        // Adjacent in lane order, or in exactly reversed lane order?
        let direction = |fwd: bool| -> bool {
            bundle.windows(2).all(|w| {
                let (a, b) = if fwd { (w[0], w[1]) } else { (w[1], w[0]) };
                match (self.ctx.memloc(a), self.ctx.memloc(b)) {
                    (Some(la), Some(lb)) => snslp_ir::is_consecutive(self.f, la, lb),
                    _ => false,
                }
            })
        };
        let kind = if direction(true) {
            NodeKind::Load
        } else if direction(false) {
            NodeKind::LoadReversed
        } else {
            return self.gather(bundle, GatherWhy::NonConsecutiveLoads);
        };
        // Collapsing the loads must not cross an aliasing store.
        let (lo, hi) = self.ctx.span(&bundle);
        for &l in &bundle {
            let loc = *self.ctx.memloc(l).expect("load has a memloc");
            if self.ctx.aliasing_store_within(self.f, lo, hi, &loc) {
                return self.gather(bundle, GatherWhy::Aliasing);
            }
        }
        let node = self.add_node(Node {
            scalars: bundle.clone(),
            kind,
            operands: Vec::new(),
        });
        self.mark_covered(&bundle, node);
        node
    }

    fn build_store_bundle(&mut self, bundle: Vec<InstId>, depth: u32) -> NodeId {
        // Seed collection guarantees adjacency; re-check for safety.
        for w in bundle.windows(2) {
            let (a, b) = (
                *self.ctx.memloc(w[0]).expect("store has a memloc"),
                *self.ctx.memloc(w[1]).expect("store has a memloc"),
            );
            if !snslp_ir::is_consecutive(self.f, &a, &b) {
                return self.gather(bundle, GatherWhy::NonConsecutiveStores);
            }
        }
        // Collapsing the stores must not cross an aliasing memory op.
        let (lo, hi) = self.ctx.span(&bundle);
        for &s in &bundle {
            let loc = *self.ctx.memloc(s).expect("store has a memloc");
            if self.ctx.aliasing_mem_within(self.f, lo, hi, &loc, &bundle) {
                return self.gather(bundle, GatherWhy::Aliasing);
            }
        }
        let values: Vec<InstId> = bundle
            .iter()
            .map(|&v| match self.f.kind(v) {
                InstKind::Store { value, .. } => *value,
                _ => unreachable!(),
            })
            .collect();
        let node = self.add_node(Node {
            scalars: bundle.clone(),
            kind: NodeKind::Store,
            operands: Vec::new(),
        });
        self.mark_covered(&bundle, node);
        let v = self.build_bundle(values, depth + 1);
        self.nodes[node].operands.push(v);
        node
    }

    fn build_binary_bundle(&mut self, bundle: Vec<InstId>, depth: u32) -> NodeId {
        let all_binary = bundle
            .iter()
            .all(|&v| matches!(self.f.kind(v), InstKind::Binary { .. }));
        if !all_binary {
            return self.gather(bundle, GatherWhy::OpcodeMismatch);
        }
        let ops: Vec<BinOp> = bundle
            .iter()
            .map(|&v| match self.f.kind(v) {
                InstKind::Binary { op, .. } => *op,
                _ => unreachable!("checked above"),
            })
            .collect();

        // 1. Try a Multi/Super-Node (paper Listing 1, line 12).
        if self.cfg.mode.flattens_chains() {
            if let Some(node) = self.try_build_super(&bundle, &ops, depth) {
                return node;
            }
        }

        let same_op = ops.iter().all(|&o| o == ops[0]);
        let family = ops[0].family().map(|(f, _)| f);
        let alt_family = family.filter(|&fam| {
            ops.iter()
                .all(|o| o.family().map(|(f2, _)| f2) == Some(fam))
        });

        if same_op {
            // 2. Plain isomorphic bundle with commutative reordering.
            let (lefts, rights) = self.reorder_operands(&bundle, &ops);
            let node = self.add_node(Node {
                scalars: bundle.clone(),
                kind: NodeKind::Vector,
                operands: Vec::new(),
            });
            self.mark_covered(&bundle, node);
            let l = self.build_bundle(lefts, depth + 1);
            let r = self.build_bundle(rights, depth + 1);
            self.nodes[node].operands.push(l);
            self.nodes[node].operands.push(r);
            node
        } else if alt_family.is_some() {
            // 3. Alternating family ops, e.g. [add, sub] (paper Fig. 3(c)).
            let (lefts, rights) = self.reorder_operands(&bundle, &ops);
            let node = self.add_node(Node {
                scalars: bundle.clone(),
                kind: NodeKind::Alt { ops },
                operands: Vec::new(),
            });
            self.mark_covered(&bundle, node);
            let l = self.build_bundle(lefts, depth + 1);
            let r = self.build_bundle(rights, depth + 1);
            self.nodes[node].operands.push(l);
            self.nodes[node].operands.push(r);
            node
        } else {
            self.gather(bundle, GatherWhy::OpcodeMismatch)
        }
    }

    /// If every lane of `bundle` is covered by the *same* vectorizable
    /// node and the bundle is a permutation of that node's lane values,
    /// emits a [`NodeKind::Permute`] referencing it.
    fn try_permute(&mut self, bundle: &[InstId]) -> Option<NodeId> {
        let &src = self.covered.get(&bundle[0])?;
        // Super nodes cover trunk instructions whose values are not the
        // node's lane values; only plain lane-value nodes are shuffleable.
        if matches!(self.nodes[src].kind, NodeKind::Super(_)) {
            return None;
        }
        let lanes = &self.nodes[src].scalars;
        if lanes.len() != bundle.len() {
            return None;
        }
        let mask: Option<Vec<u8>> = bundle
            .iter()
            .map(|v| lanes.iter().position(|s| s == v).map(|p| p as u8))
            .collect();
        let mask = mask?;
        Some(self.add_node(Node {
            scalars: bundle.to_vec(),
            kind: NodeKind::Permute { mask },
            operands: vec![src],
        }))
    }

    /// Per-lane commutative operand orientation: lane 0 stays natural;
    /// each later lane picks the orientation maximizing the pair score
    /// against the previous lane's chosen operands.
    fn reorder_operands(&self, bundle: &[InstId], ops: &[BinOp]) -> (Vec<InstId>, Vec<InstId>) {
        let depth = self.lookahead_depth();
        let mut lefts = Vec::with_capacity(bundle.len());
        let mut rights = Vec::with_capacity(bundle.len());
        for (lane, &inst) in bundle.iter().enumerate() {
            let o = self.f.kind(inst).operands();
            let (mut l, mut r) = (o[0], o[1]);
            if lane > 0 && ops[lane].is_commutative() {
                let pl = lefts[lane - 1];
                let pr = rights[lane - 1];
                let straight = score_pair_with(self.f, self.cache, pl, l, depth)
                    + score_pair_with(self.f, self.cache, pr, r, depth);
                let swapped = score_pair_with(self.f, self.cache, pl, r, depth)
                    + score_pair_with(self.f, self.cache, pr, l, depth);
                if swapped > straight {
                    std::mem::swap(&mut l, &mut r);
                }
            }
            lefts.push(l);
            rights.push(r);
        }
        (lefts, rights)
    }

    /// Attempts to form a Multi-Node (LSLP) or Super-Node (SN-SLP) from a
    /// bundle of family ops (paper Listing 1 `buildSuperNode`).
    ///
    /// When the fully-grown Super-Node chains are incompatible across
    /// lanes (unequal leaf counts), SN-SLP retries with Multi-Node growth
    /// rules (inverse ops terminate the trunk) so that it never loses an
    /// opportunity LSLP would have found — SN-SLP strictly generalizes
    /// LSLP.
    fn try_build_super(&mut self, bundle: &[InstId], ops: &[BinOp], depth: u32) -> Option<NodeId> {
        let mut variants: Vec<bool> = Vec::new();
        if self.cfg.mode.allows_inverse_ops() {
            variants.push(true);
        }
        variants.push(false);
        for allow_inverse in variants {
            if let Some(chains) = self.extract_compatible_chains(bundle, ops, allow_inverse) {
                return Some(self.commit_super(bundle, chains, depth));
            }
        }
        None
    }

    /// Extracts one chain per lane under the given growth rule; `None` if
    /// any lane fails or the lanes are incompatible.
    fn extract_compatible_chains(
        &self,
        bundle: &[InstId],
        ops: &[BinOp],
        allow_inverse: bool,
    ) -> Option<Vec<LaneChain>> {
        let (family, _) = ops[0].family()?;
        for op in ops {
            let (fam, dir) = op.family()?;
            if fam != family {
                return None;
            }
            if !allow_inverse && dir == snslp_ir::Direction::Inverse {
                return None;
            }
        }

        // Later lanes must not claim instructions already claimed by
        // earlier lanes' trunks.
        let mut claimed_trunks: Vec<InstId> = Vec::new();
        let mut chains: Vec<LaneChain> = Vec::with_capacity(bundle.len());
        for &root in bundle {
            let covered = &self.covered;
            let local = claimed_trunks.clone();
            let chain = extract_chain(
                self.f,
                self.ctx,
                root,
                allow_inverse,
                self.cfg.max_supernode_leaves,
                &move |i| covered.contains_key(&i) || local.contains(&i),
            )?;
            claimed_trunks.extend_from_slice(&chain.trunk);
            chains.push(chain);
        }

        // Compatibility (paper `areCompatible`): equal leaf counts and a
        // genuine chain (size ≥ 2) in every lane — a size-1 "chain" is
        // just a plain bundle and is handled by the normal path.
        let n_leaves = chains[0].leaves.len();
        if chains.iter().any(|c| c.leaves.len() != n_leaves) {
            return None;
        }
        if chains.iter().any(|c| c.size() < 2) {
            return None;
        }
        Some(chains)
    }

    /// Plans the reordering and creates the Super-Node and its operand
    /// slot bundles.
    fn commit_super(&mut self, bundle: &[InstId], chains: Vec<LaneChain>, depth: u32) -> NodeId {
        let plan: SuperNodePlan = plan_supernode_cached(
            self.f,
            chains,
            self.cfg.lookahead_depth,
            self.cfg.enable_trunk_reordering,
            self.cache,
        );

        let info = SuperInfo {
            family: plan.family,
            trunks: plan.chains.iter().map(|c| c.trunk.clone()).collect(),
            slot_signs: (0..plan.num_slots()).map(|j| plan.slot_signs(j)).collect(),
            leaf_moves: plan.leaf_moves,
            trunk_assisted_moves: plan.trunk_assisted_moves,
        };
        let node = self.add_node(Node {
            scalars: bundle.to_vec(),
            kind: NodeKind::Super(info),
            operands: Vec::new(),
        });
        // Cover *all* trunk instructions.
        for chain in &plan.chains {
            self.mark_covered(&chain.trunk, node);
        }
        for j in 0..plan.num_slots() {
            let slot = plan.slot_values(j);
            let child = self.build_bundle(slot, depth + 1);
            self.nodes[node].operands.push(child);
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlpConfig;
    use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};

    /// The paper's Figure 2-style kernel: two lanes, leaf reordering only.
    ///   A[0] = B[0] - C[0] + D[1];   (D and B leaves swapped in lane 1)
    ///   A[1] = D[2] - C[1] + B[1];
    fn fig2() -> (Function, Vec<InstId>) {
        let mut fb = FunctionBuilder::new(
            "fig2",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::noalias_ptr("c"),
                Param::noalias_ptr("d"),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let c = fb.func().param(2);
        let d = fb.func().param(3);
        let ld = |base: InstId, k: i64, fb: &mut FunctionBuilder| {
            let q = fb.ptradd_const(base, 8 * k);
            fb.load(ScalarType::I64, q)
        };
        // Lane 0: B[0] - C[0] + D[1]
        let b0 = ld(b, 0, &mut fb);
        let c0 = ld(c, 0, &mut fb);
        let d1 = ld(d, 1, &mut fb);
        let t0 = fb.sub(b0, c0);
        let r0 = fb.add(t0, d1);
        let s0 = fb.store(a, r0);
        // Lane 1: D[2] - C[1] + B[1]
        let d2 = ld(d, 2, &mut fb);
        let c1 = ld(c, 1, &mut fb);
        let b1 = ld(b, 1, &mut fb);
        let t1 = fb.sub(d2, c1);
        let r1 = fb.add(t1, b1);
        let pa1 = fb.ptradd_const(a, 8);
        let s1 = fb.store(pa1, r1);
        fb.ret(None);
        (fb.finish(), vec![s0, s1])
    }

    fn graph_for(f: &Function, seeds: &[InstId], mode: SlpMode) -> SlpGraph {
        let ctx = BlockCtx::compute(f, f.entry());
        let cfg = SlpConfig::new(mode);
        build_graph(f, &ctx, &cfg, seeds)
    }

    #[test]
    fn vanilla_slp_on_fig2_has_two_gathers() {
        let (f, seeds) = fig2();
        let g = graph_for(&f, &seeds, SlpMode::Slp);
        // store → add → {sub, gather}; sub → {gather, C-load}.
        let gathers = g.num_gather_nodes();
        assert_eq!(gathers, 2, "non-adjacent D/B leaf groups gather: {g:#?}");
        // The C loads vectorize; B/D groups do not.
        let loads = g
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Load))
            .count();
        assert_eq!(loads, 1);
        assert!(g.super_node_sizes().is_empty());
    }

    #[test]
    fn snslp_on_fig2_is_fully_vectorizable() {
        let (f, seeds) = fig2();
        let g = graph_for(&f, &seeds, SlpMode::SnSlp);
        assert_eq!(g.num_gather_nodes(), 0, "{g:#?}");
        let supers = g.super_node_sizes();
        assert_eq!(supers, vec![2], "one Super-Node of size 2");
        // Three vector-load slots.
        let loads = g
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Load))
            .count();
        assert_eq!(loads, 3);
    }

    #[test]
    fn lslp_cannot_flatten_across_subtraction() {
        let (f, seeds) = fig2();
        let g = graph_for(&f, &seeds, SlpMode::Lslp);
        // The roots are adds, but the chains stop at the subs (inverse
        // ops are not allowed in Multi-Nodes) — size-1 chains don't form
        // a Multi-Node.
        assert!(g.super_node_sizes().is_empty(), "{g:#?}");
        assert_eq!(g.num_gather_nodes(), 2);
    }

    #[test]
    fn covered_tracks_trunk_instructions() {
        let (f, seeds) = fig2();
        let g = graph_for(&f, &seeds, SlpMode::SnSlp);
        // 2 stores + 2 adds + 2 subs + 6 loads are covered.
        assert_eq!(g.covered.len(), 12);
        // lane_of resolves trunk members to their lane.
        for (&inst, _) in g.covered.iter() {
            assert!(g.lane_of(inst).is_some());
        }
    }

    #[test]
    fn splat_and_constant_gathers_classified() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::F64, p);
        let k = fb.const_f64(2.0);
        let m0 = fb.mul(x, k);
        let k2 = fb.const_f64(3.0);
        let p1 = fb.ptradd_const(p, 8);
        let x1 = fb.load(ScalarType::F64, p1);
        let m1 = fb.mul(x1, k2);
        let s0 = fb.store(p, m0);
        let s1 = fb.store(p1, m1);
        fb.ret(None);
        let f = fb.finish();
        let g = graph_for(&f, &[s0, s1], SlpMode::Slp);
        let has_const_gather = g.nodes.iter().any(|n| {
            matches!(
                n.kind,
                NodeKind::Gather {
                    kind: GatherKind::Constants,
                    ..
                }
            )
        });
        assert!(has_const_gather, "{g:#?}");
    }

    #[test]
    fn dependent_lanes_gather() {
        // store a[0] = x; store a[1] = x + a-load — lanes are fine, but
        // make lane1's value depend on lane0's value.
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::I64, p);
        let y = fb.add(x, x);
        let z = fb.add(y, x); // z depends on y
        let s0 = fb.store(p, y);
        let p1 = fb.ptradd_const(p, 8);
        let s1 = fb.store(p1, z);
        fb.ret(None);
        let f = fb.finish();
        let g = graph_for(&f, &[s0, s1], SlpMode::Slp);
        // The value bundle {y, z} has z depending on y → gather.
        let root = &g.nodes[g.root()];
        assert!(matches!(root.kind, NodeKind::Store));
        let val = &g.nodes[root.operands[0]];
        assert!(
            matches!(val.kind, NodeKind::Gather { .. }),
            "dependent lanes must gather: {g:#?}"
        );
    }

    #[test]
    fn alt_bundle_forms_for_mixed_add_sub() {
        // lane0: x0 + y0 ; lane1: x1 - y1 (no chains: single ops).
        let mut fb = FunctionBuilder::new(
            "t",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("x"),
                Param::noalias_ptr("y"),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let x = fb.func().param(1);
        let y = fb.func().param(2);
        let x0 = fb.load(ScalarType::I64, x);
        let y0 = fb.load(ScalarType::I64, y);
        let r0 = fb.add(x0, y0);
        let px1 = fb.ptradd_const(x, 8);
        let py1 = fb.ptradd_const(y, 8);
        let x1 = fb.load(ScalarType::I64, px1);
        let y1 = fb.load(ScalarType::I64, py1);
        let r1 = fb.sub(x1, y1);
        let s0 = fb.store(a, r0);
        let pa1 = fb.ptradd_const(a, 8);
        let s1 = fb.store(pa1, r1);
        fb.ret(None);
        let f = fb.finish();
        // Vanilla SLP: no chain flattening → Alt node.
        let g = graph_for(&f, &[s0, s1], SlpMode::Slp);
        let alts = g
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Alt { .. }))
            .count();
        assert_eq!(alts, 1, "{g:#?}");
        assert_eq!(g.num_gather_nodes(), 0);
    }

    #[test]
    fn load_across_aliasing_store_gathers() {
        // load a[0]; store a[1] = ...; load a[1]; bundling the loads
        // would cross the store.
        let mut fb = FunctionBuilder::new(
            "t",
            vec![Param::noalias_ptr("a"), Param::noalias_ptr("o")],
            Type::Void,
        );
        let a = fb.func().param(0);
        let o = fb.func().param(1);
        let l0 = fb.load(ScalarType::I64, a);
        let pa1 = fb.ptradd_const(a, 8);
        let k = fb.const_i64(7);
        fb.store(pa1, k);
        let l1 = fb.load(ScalarType::I64, pa1);
        let r0 = fb.add(l0, l0);
        let r1 = fb.add(l1, l1);
        let s0 = fb.store(o, r0);
        let po1 = fb.ptradd_const(o, 8);
        let s1 = fb.store(po1, r1);
        fb.ret(None);
        let f = fb.finish();
        let g = graph_for(&f, &[s0, s1], SlpMode::Slp);
        let loads = g
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Load))
            .count();
        assert_eq!(loads, 0, "loads must gather, they cross a store: {g:#?}");
    }
}
