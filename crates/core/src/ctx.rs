//! Per-block analysis context shared by graph construction, cost
//! evaluation, and code generation.

use std::collections::HashMap;

use snslp_ir::analysis::{may_alias, MemLoc};
use snslp_ir::{BlockId, Function, InstId, InstKind};

/// Cached per-block facts: instruction positions, use counts, users, and
/// memory locations.
#[derive(Debug)]
pub struct BlockCtx {
    /// The block under analysis.
    pub block: BlockId,
    /// Position of each instruction inside the block.
    pub pos: HashMap<InstId, usize>,
    /// Function-wide users of every value.
    pub users: Vec<Vec<InstId>>,
    /// Function-wide use counts.
    pub use_counts: Vec<u32>,
    /// Memory locations of the block's loads and stores.
    pub memlocs: HashMap<InstId, MemLoc>,
}

impl BlockCtx {
    /// Computes the context for `block` of `f`.
    pub fn compute(f: &Function, block: BlockId) -> Self {
        let mut pos = HashMap::new();
        let mut memlocs = HashMap::new();
        for (i, &id) in f.block(block).insts().iter().enumerate() {
            pos.insert(id, i);
            if let Some(loc) = MemLoc::of_inst(f, id) {
                memlocs.insert(id, loc);
            }
        }
        BlockCtx {
            block,
            pos,
            users: f.users(),
            use_counts: f.use_counts(),
            memlocs,
        }
    }

    /// Whether `id` is an instruction of this block.
    pub fn in_block(&self, id: InstId) -> bool {
        self.pos.contains_key(&id)
    }

    /// Number of uses of `id` (function-wide).
    pub fn use_count(&self, id: InstId) -> u32 {
        self.use_counts[id.index()]
    }

    /// Users of `id` (function-wide).
    pub fn users_of(&self, id: InstId) -> &[InstId] {
        &self.users[id.index()]
    }

    /// Whether `a` (transitively) depends on `b` through use-def edges
    /// within this block. Used to reject bundles whose lanes depend on
    /// each other.
    pub fn depends_on(&self, f: &Function, a: InstId, b: InstId) -> bool {
        if a == b {
            return true;
        }
        let mut stack = vec![a];
        let mut seen = vec![a];
        while let Some(cur) = stack.pop() {
            for op in f.kind(cur).operands() {
                if op == b {
                    return true;
                }
                if self.in_block(op) && !seen.contains(&op) {
                    seen.push(op);
                    stack.push(op);
                }
            }
        }
        false
    }

    /// Whether any *store* with a position strictly inside `(lo, hi)` may
    /// alias `loc`. Used to check that a bundle of loads spanning
    /// positions `lo..=hi` can be collapsed into one vector load.
    pub fn aliasing_store_within(&self, f: &Function, lo: usize, hi: usize, loc: &MemLoc) -> bool {
        for (&id, other) in &self.memlocs {
            if !matches!(f.kind(id), InstKind::Store { .. }) {
                continue;
            }
            let p = self.pos[&id];
            if p > lo && p < hi && may_alias(f, loc, other) {
                return true;
            }
        }
        false
    }

    /// Whether any memory operation *not in `exclude`* with a position
    /// strictly inside `(lo, hi)` may alias `loc`. Used for store bundles.
    pub fn aliasing_mem_within(
        &self,
        f: &Function,
        lo: usize,
        hi: usize,
        loc: &MemLoc,
        exclude: &[InstId],
    ) -> bool {
        for (&id, other) in &self.memlocs {
            if exclude.contains(&id) {
                continue;
            }
            let p = self.pos[&id];
            if p > lo && p < hi && may_alias(f, loc, other) {
                return true;
            }
        }
        false
    }

    /// The position span `(min, max)` of a bundle of block instructions.
    ///
    /// # Panics
    ///
    /// Panics if the bundle is empty or contains non-block values.
    pub fn span(&self, bundle: &[InstId]) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0;
        for &id in bundle {
            let p = self.pos[&id];
            lo = lo.min(p);
            hi = hi.max(p);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};

    #[test]
    fn depends_on_tracks_transitive_deps() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let a = fb.load(ScalarType::F64, p);
        let b = fb.add(a, a);
        let c = fb.mul(b, a);
        fb.store(p, c);
        fb.ret(None);
        let f = fb.finish();
        let ctx = BlockCtx::compute(&f, f.entry());
        assert!(ctx.depends_on(&f, c, a));
        assert!(ctx.depends_on(&f, b, a));
        assert!(!ctx.depends_on(&f, a, b));
        assert!(ctx.depends_on(&f, a, a));
    }

    #[test]
    fn aliasing_store_detection() {
        // load a[0]; store a[1]; load a[1] — collapsing the two loads
        // would move the second load across the store it aliases.
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("a")], Type::Void);
        let a = fb.func().param(0);
        let l0 = fb.load(ScalarType::F64, a);
        let p1 = fb.ptradd_const(a, 8);
        fb.store(p1, l0);
        let l1 = fb.load(ScalarType::F64, p1);
        fb.store(a, l1);
        fb.ret(None);
        let f = fb.finish();
        let ctx = BlockCtx::compute(&f, f.entry());
        let (lo, hi) = ctx.span(&[l0, l1]);
        let loc1 = ctx.memlocs[&l1];
        assert!(ctx.aliasing_store_within(&f, lo, hi, &loc1));
        // The first load's location (a[0]) is not touched by the store.
        let loc0 = ctx.memlocs[&l0];
        assert!(!ctx.aliasing_store_within(&f, lo, hi, &loc0));
    }

    #[test]
    fn use_counts_and_users() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let a = fb.load(ScalarType::F64, p);
        let b = fb.add(a, a);
        fb.store(p, b);
        fb.ret(None);
        let f = fb.finish();
        let ctx = BlockCtx::compute(&f, f.entry());
        assert_eq!(ctx.use_count(a), 2);
        assert_eq!(ctx.users_of(b).len(), 1);
    }
}
