//! Per-block analysis context shared by graph construction, cost
//! evaluation, and code generation.
//!
//! The context is computed once per block (and reused across the seed
//! loop while the IR is unchanged), so everything the hot queries touch
//! is precomputed into dense, index-based structures:
//!
//! - **positions** are a dense `Vec<u32>` indexed by arena id (sentinel
//!   `u32::MAX` = not in this block), so `pos`/`in_block` — the hottest
//!   queries in the pass — never hash;
//! - **users** are a CSR (offsets + data) layout over the arena instead
//!   of one `Vec` allocation per instruction;
//! - **dependence** queries are answered from a transitive-reachability
//!   bitset (one row of block-position bits per instruction), built in a
//!   single forward pass; `depends_on` is then two array reads and a bit
//!   test instead of a DFS;
//! - **aliasing** range queries binary-search a position-sorted memory-op
//!   index, answering in O(log n + k) for k memory ops in the range
//!   instead of rescanning every memory op of the block.
//!
//! The scan-based implementations survive as `*_scan` methods: they are
//! the reference semantics (property tests assert the indexed answers
//! match them on every fixture and on generated cases) and the fallback
//! for IR that is not def-before-use ordered within the block.

use snslp_ir::analysis::{may_alias, MemLoc};
use snslp_ir::{BlockId, Function, InstId, InstKind};

/// Sentinel position for "not an instruction of this block".
const NOT_IN_BLOCK: u32 = u32::MAX;

/// One entry of the position-sorted memory-op index.
#[derive(Debug, Clone, Copy)]
struct MemOp {
    /// Position of the operation inside the block.
    pos: u32,
    /// The load or store instruction.
    id: InstId,
    /// Whether the operation is a store.
    is_store: bool,
    /// Its decomposed memory location.
    loc: MemLoc,
}

/// Cached per-block facts: instruction positions, use counts, users,
/// memory locations, transitive-dependence reachability, and a sorted
/// memory-op interval index.
#[derive(Debug)]
pub struct BlockCtx {
    /// The block under analysis.
    pub block: BlockId,
    /// Dense arena-indexed position map (`NOT_IN_BLOCK` sentinel).
    pos: Vec<u32>,
    /// Function-wide users in CSR layout: the users of arena slot `i` are
    /// `user_data[user_offsets[i] as usize..user_offsets[i + 1] as usize]`.
    user_offsets: Vec<u32>,
    user_data: Vec<InstId>,
    /// Function-wide use counts.
    use_counts: Vec<u32>,
    /// Memory locations of the block's loads and stores, arena-indexed.
    memlocs: Vec<Option<MemLoc>>,
    /// The block's memory operations sorted by position.
    mem_ops: Vec<MemOp>,
    /// Transitive in-block reachability: row `i` (at `reach[i * words..]`)
    /// has bit `j` set iff the instruction at position `i` transitively
    /// depends on the instruction at position `j` through use-def edges
    /// within the block. `None` when the block is not def-before-use
    /// ordered (forward references), in which case queries fall back to
    /// the DFS scan.
    reach: Option<Vec<u64>>,
    /// Words per reachability row.
    reach_words: usize,
}

impl BlockCtx {
    /// Computes the context for `block` of `f`.
    pub fn compute(f: &Function, block: BlockId) -> Self {
        let _p = snslp_trace::ProfSpan::enter("ctx.compute");
        let slots = f.num_inst_slots();
        let insts = f.block(block).insts();
        let n = insts.len();

        let mut pos = vec![NOT_IN_BLOCK; slots];
        let mut memlocs = vec![None; slots];
        let mut mem_ops = Vec::new();
        for (i, &id) in insts.iter().enumerate() {
            pos[id.index()] = i as u32;
            if let Some(loc) = MemLoc::of_inst(f, id) {
                memlocs[id.index()] = Some(loc);
                mem_ops.push(MemOp {
                    pos: i as u32,
                    id,
                    is_store: matches!(f.kind(id), InstKind::Store { .. }),
                    loc,
                });
            }
        }
        // Block order is position order, so the index is already sorted.
        debug_assert!(mem_ops.windows(2).all(|w| w[0].pos < w[1].pos));

        // Users and use counts in one operand sweep: count, prefix-sum,
        // fill (classic CSR construction).
        let mut use_counts = vec![0u32; slots];
        for b in f.block_ids() {
            for &id in f.block(b).insts() {
                f.kind(id)
                    .for_each_operand(|op| use_counts[op.index()] += 1);
            }
        }
        let mut user_offsets = vec![0u32; slots + 1];
        for i in 0..slots {
            user_offsets[i + 1] = user_offsets[i] + use_counts[i];
        }
        let mut cursor = user_offsets.clone();
        let mut user_data = vec![InstId(0); user_offsets[slots] as usize];
        for b in f.block_ids() {
            for &id in f.block(b).insts() {
                f.kind(id).for_each_operand(|op| {
                    user_data[cursor[op.index()] as usize] = id;
                    cursor[op.index()] += 1;
                });
            }
        }

        // Transitive reachability over in-block use-def edges. Valid in
        // one forward pass when every in-block operand is defined at an
        // earlier position; a forward reference voids the index.
        let words = n.div_ceil(64);
        let mut reach = vec![0u64; n * words];
        let mut ordered = true;
        'build: for (i, &id) in insts.iter().enumerate() {
            let mut ops_ok = true;
            f.kind(id).for_each_operand(|op| {
                let j = pos[op.index()];
                if j != NOT_IN_BLOCK && j as usize >= i {
                    ops_ok = false;
                }
            });
            if !ops_ok {
                ordered = false;
                break 'build;
            }
            let (done, row) = reach.split_at_mut(i * words);
            let row = &mut row[..words];
            f.kind(id).for_each_operand(|op| {
                let j = pos[op.index()];
                if j != NOT_IN_BLOCK {
                    let j = j as usize;
                    for (w, &src) in row.iter_mut().zip(&done[j * words..(j + 1) * words]) {
                        *w |= src;
                    }
                    row[j / 64] |= 1u64 << (j % 64);
                }
            });
        }

        BlockCtx {
            block,
            pos,
            user_offsets,
            user_data,
            use_counts,
            memlocs,
            mem_ops,
            reach: ordered.then_some(reach),
            reach_words: words,
        }
    }

    /// Whether `id` is an instruction of this block.
    #[inline]
    pub fn in_block(&self, id: InstId) -> bool {
        self.pos[id.index()] != NOT_IN_BLOCK
    }

    /// Position of `id` inside the block, if it is a block instruction.
    #[inline]
    pub fn pos_of(&self, id: InstId) -> Option<usize> {
        let p = self.pos[id.index()];
        (p != NOT_IN_BLOCK).then_some(p as usize)
    }

    /// Number of uses of `id` (function-wide).
    #[inline]
    pub fn use_count(&self, id: InstId) -> u32 {
        self.use_counts[id.index()]
    }

    /// Users of `id` (function-wide).
    #[inline]
    pub fn users_of(&self, id: InstId) -> &[InstId] {
        let i = id.index();
        &self.user_data[self.user_offsets[i] as usize..self.user_offsets[i + 1] as usize]
    }

    /// Memory location of `id`, if it is a load or store of this block.
    #[inline]
    pub fn memloc(&self, id: InstId) -> Option<&MemLoc> {
        self.memlocs[id.index()].as_ref()
    }

    /// Whether `a` (transitively) depends on `b` through use-def edges
    /// within this block. Used to reject bundles whose lanes depend on
    /// each other. Answered from the reachability bitset when both values
    /// are block instructions; otherwise (or when the block has forward
    /// references) via [`BlockCtx::depends_on_scan`].
    pub fn depends_on(&self, f: &Function, a: InstId, b: InstId) -> bool {
        if a == b {
            return true;
        }
        if let Some(reach) = &self.reach {
            let (pa, pb) = (self.pos[a.index()], self.pos[b.index()]);
            if pa != NOT_IN_BLOCK && pb != NOT_IN_BLOCK {
                let (i, j) = (pa as usize, pb as usize);
                return reach[i * self.reach_words + j / 64] & (1u64 << (j % 64)) != 0;
            }
            if pa == NOT_IN_BLOCK {
                // The scan would test `a`'s direct operands and then
                // traverse only its in-block operands; without any, the
                // direct test is the whole answer (the common case:
                // constants and other out-of-block bundle lanes).
                let mut direct = false;
                let mut has_in_block_op = false;
                f.kind(a).for_each_operand(|op| {
                    direct |= op == b;
                    has_in_block_op |= self.in_block(op);
                });
                if direct {
                    return true;
                }
                if !has_in_block_op {
                    return false;
                }
            } else {
                // `a` is a block instruction but `b` is not: `a` depends
                // on `b` iff `b` is a direct operand of `a` or of any
                // instruction in `a`'s in-block reachability cone — the
                // exact set the scan visits, read off the bitset row.
                let mut found = false;
                f.kind(a).for_each_operand(|op| found |= op == b);
                if found {
                    return true;
                }
                let insts = f.block(self.block).insts();
                let row = &reach[pa as usize * self.reach_words..][..self.reach_words];
                for (w, &word) in row.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let j = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        f.kind(insts[j]).for_each_operand(|op| found |= op == b);
                        if found {
                            return true;
                        }
                    }
                }
                return false;
            }
        }
        self.depends_on_scan(f, a, b)
    }

    /// Reference implementation of [`BlockCtx::depends_on`]: an explicit
    /// DFS over use-def edges with a dense visited map (the historical
    /// `Vec::contains` visited scan was O(n²) on deep chains).
    pub fn depends_on_scan(&self, f: &Function, a: InstId, b: InstId) -> bool {
        if a == b {
            return true;
        }
        let mut stack = vec![a];
        let mut seen = vec![false; f.num_inst_slots()];
        seen[a.index()] = true;
        let mut found = false;
        while let Some(cur) = stack.pop() {
            f.kind(cur).for_each_operand(|op| {
                if op == b {
                    found = true;
                }
                if self.in_block(op) && !seen[op.index()] {
                    seen[op.index()] = true;
                    stack.push(op);
                }
            });
            if found {
                return true;
            }
        }
        false
    }

    /// The memory ops with positions strictly inside `(lo, hi)`.
    #[inline]
    fn mem_ops_between(&self, lo: usize, hi: usize) -> &[MemOp] {
        let start = self.mem_ops.partition_point(|m| m.pos as usize <= lo);
        let end = self.mem_ops.partition_point(|m| (m.pos as usize) < hi);
        &self.mem_ops[start..end.max(start)]
    }

    /// Whether any *store* with a position strictly inside `(lo, hi)` may
    /// alias `loc`. Used to check that a bundle of loads spanning
    /// positions `lo..=hi` can be collapsed into one vector load.
    pub fn aliasing_store_within(&self, f: &Function, lo: usize, hi: usize, loc: &MemLoc) -> bool {
        self.mem_ops_between(lo, hi)
            .iter()
            .any(|m| m.is_store && may_alias(f, loc, &m.loc))
    }

    /// Whether any memory operation *not in `exclude`* with a position
    /// strictly inside `(lo, hi)` may alias `loc`. Used for store bundles.
    pub fn aliasing_mem_within(
        &self,
        f: &Function,
        lo: usize,
        hi: usize,
        loc: &MemLoc,
        exclude: &[InstId],
    ) -> bool {
        let _p = snslp_trace::ProfSpan::enter("ctx.aliasing_mem_within");
        self.mem_ops_between(lo, hi)
            .iter()
            .any(|m| !exclude.contains(&m.id) && may_alias(f, loc, &m.loc))
    }

    /// Reference implementation of [`BlockCtx::aliasing_store_within`]:
    /// a linear scan over every memory op of the block.
    pub fn aliasing_store_within_scan(
        &self,
        f: &Function,
        lo: usize,
        hi: usize,
        loc: &MemLoc,
    ) -> bool {
        self.mem_ops.iter().any(|m| {
            let p = m.pos as usize;
            m.is_store && p > lo && p < hi && may_alias(f, loc, &m.loc)
        })
    }

    /// Reference implementation of [`BlockCtx::aliasing_mem_within`]: a
    /// linear scan over every memory op of the block.
    pub fn aliasing_mem_within_scan(
        &self,
        f: &Function,
        lo: usize,
        hi: usize,
        loc: &MemLoc,
        exclude: &[InstId],
    ) -> bool {
        self.mem_ops.iter().any(|m| {
            let p = m.pos as usize;
            !exclude.contains(&m.id) && p > lo && p < hi && may_alias(f, loc, &m.loc)
        })
    }

    /// The position span `(min, max)` of a bundle of block instructions.
    ///
    /// # Panics
    ///
    /// Panics if the bundle is empty or contains non-block values.
    pub fn span(&self, bundle: &[InstId]) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0;
        for &id in bundle {
            let p = self.pos[id.index()];
            assert!(p != NOT_IN_BLOCK, "span of non-block value {id:?}");
            lo = lo.min(p as usize);
            hi = hi.max(p as usize);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};

    #[test]
    fn depends_on_tracks_transitive_deps() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let a = fb.load(ScalarType::F64, p);
        let b = fb.add(a, a);
        let c = fb.mul(b, a);
        fb.store(p, c);
        fb.ret(None);
        let f = fb.finish();
        let ctx = BlockCtx::compute(&f, f.entry());
        assert!(ctx.reach.is_some(), "builder IR is def-before-use");
        assert!(ctx.depends_on(&f, c, a));
        assert!(ctx.depends_on(&f, b, a));
        assert!(!ctx.depends_on(&f, a, b));
        assert!(ctx.depends_on(&f, a, a));
    }

    #[test]
    fn indexed_depends_on_matches_scan() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let mut vals = vec![fb.load(ScalarType::F64, p)];
        for i in 1..12 {
            let prev = vals[i - 1];
            let other = vals[i / 2];
            vals.push(fb.add(prev, other));
        }
        fb.store(p, *vals.last().unwrap());
        fb.ret(None);
        let f = fb.finish();
        let ctx = BlockCtx::compute(&f, f.entry());
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    ctx.depends_on(&f, a, b),
                    ctx.depends_on_scan(&f, a, b),
                    "bitset vs DFS disagree on ({a:?}, {b:?})"
                );
            }
        }
    }

    #[test]
    fn depends_on_out_of_block_operand() {
        // b (the dependence target) is a parameter, not a block
        // instruction: the bitset cannot answer, the scan must.
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let a = fb.load(ScalarType::F64, p);
        let s = fb.add(a, a);
        fb.store(p, s);
        fb.ret(None);
        let f = fb.finish();
        let ctx = BlockCtx::compute(&f, f.entry());
        assert!(ctx.depends_on(&f, s, p), "s uses p through the load");
        assert_eq!(ctx.depends_on(&f, s, p), ctx.depends_on_scan(&f, s, p));
    }

    #[test]
    fn aliasing_store_detection() {
        // load a[0]; store a[1]; load a[1] — collapsing the two loads
        // would move the second load across the store it aliases.
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("a")], Type::Void);
        let a = fb.func().param(0);
        let l0 = fb.load(ScalarType::F64, a);
        let p1 = fb.ptradd_const(a, 8);
        fb.store(p1, l0);
        let l1 = fb.load(ScalarType::F64, p1);
        fb.store(a, l1);
        fb.ret(None);
        let f = fb.finish();
        let ctx = BlockCtx::compute(&f, f.entry());
        let (lo, hi) = ctx.span(&[l0, l1]);
        let loc1 = *ctx.memloc(l1).unwrap();
        assert!(ctx.aliasing_store_within(&f, lo, hi, &loc1));
        assert_eq!(
            ctx.aliasing_store_within(&f, lo, hi, &loc1),
            ctx.aliasing_store_within_scan(&f, lo, hi, &loc1)
        );
        // The first load's location (a[0]) is not touched by the store.
        let loc0 = *ctx.memloc(l0).unwrap();
        assert!(!ctx.aliasing_store_within(&f, lo, hi, &loc0));
        assert_eq!(
            ctx.aliasing_store_within(&f, lo, hi, &loc0),
            ctx.aliasing_store_within_scan(&f, lo, hi, &loc0)
        );
    }

    #[test]
    fn indexed_aliasing_matches_scan_on_all_ranges() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("a")], Type::Void);
        let a = fb.func().param(0);
        let mut prev = None;
        for i in 0..6 {
            let p = fb.ptradd_const(a, 8 * i);
            let l = fb.load(ScalarType::F64, p);
            if let Some(v) = prev {
                let s = fb.add(l, v);
                fb.store(p, s);
            }
            prev = Some(l);
        }
        fb.ret(None);
        let f = fb.finish();
        let ctx = BlockCtx::compute(&f, f.entry());
        let n = f.block(f.entry()).insts().len();
        let locs: Vec<MemLoc> = ctx.mem_ops.iter().map(|m| m.loc).collect();
        let ids: Vec<InstId> = ctx.mem_ops.iter().map(|m| m.id).collect();
        for lo in 0..n {
            for hi in lo..n {
                for loc in &locs {
                    assert_eq!(
                        ctx.aliasing_store_within(&f, lo, hi, loc),
                        ctx.aliasing_store_within_scan(&f, lo, hi, loc),
                        "store query ({lo}, {hi})"
                    );
                    assert_eq!(
                        ctx.aliasing_mem_within(&f, lo, hi, loc, &ids[..2]),
                        ctx.aliasing_mem_within_scan(&f, lo, hi, loc, &ids[..2]),
                        "mem query ({lo}, {hi})"
                    );
                }
            }
        }
    }

    #[test]
    fn use_counts_and_users() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let a = fb.load(ScalarType::F64, p);
        let b = fb.add(a, a);
        fb.store(p, b);
        fb.ret(None);
        let f = fb.finish();
        let ctx = BlockCtx::compute(&f, f.entry());
        assert_eq!(ctx.use_count(a), 2);
        assert_eq!(ctx.users_of(b).len(), 1);
        assert_eq!(ctx.users_of(a), &[b, b]);
    }
}
