//! Vector code generation and block re-scheduling (paper Fig. 1 step 6:
//! "Schedule & Vectorize").
//!
//! Emission walks the SLP graph bottom-up, creating detached vector
//! instructions; the scheduler then rebuilds the block as a topological
//! order over SSA edges plus may-alias memory edges. Nothing is committed
//! until a valid schedule exists, so a scheduling failure (rare, but
//! possible when an extract would have to cross an aliasing memory
//! operation) leaves the function untouched.

use std::error::Error;
use std::fmt;

use snslp_ir::analysis::{may_alias, MemLoc};
use snslp_ir::FxHashMap;
use snslp_ir::{BinOp, BlockId, Constant, Function, InstId, InstKind, OpFamily, Type};

use crate::chain::Sign;
use crate::graph::{GatherKind, NodeId, NodeKind, SlpGraph};

/// Code generation failure; the function is left unmodified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodegenError {
    /// The combined SSA + memory dependence graph has a cycle, so the
    /// bundles cannot be scheduled.
    SchedulingCycle,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::SchedulingCycle => {
                write!(f, "vector bundles cannot be scheduled (dependence cycle)")
            }
        }
    }
}

impl Error for CodegenError {}

/// Applies `graph` to `f`, replacing the covered scalar instructions of
/// `block` with vector code. Returns the instructions the emission
/// created (stable arena ids; some may have been unlinked again by
/// dead-code removal), so callers can attribute the surviving native
/// code back to this decision.
///
/// # Errors
///
/// [`CodegenError::SchedulingCycle`] if no valid instruction order exists;
/// the function is then left semantically unchanged (only unreferenced
/// detached arena slots may remain).
pub fn apply(
    f: &mut Function,
    block: BlockId,
    graph: &SlpGraph,
) -> Result<Vec<InstId>, CodegenError> {
    let _p = snslp_trace::ProfSpan::enter("codegen.emit");
    let positions: FxHashMap<InstId, usize> = f
        .block(block)
        .insts()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();

    let mut em = Emitter {
        f,
        graph,
        positions: &positions,
        state: vec![EmitState::Todo; graph.nodes.len()],
        new_insts: Vec::new(),
        new_keys: FxHashMap::default(),
        extracts: FxHashMap::default(),
        reduction_values: FxHashMap::default(),
    };
    em.emit_node(graph.root())?;

    // Extracts for externally used vectorized scalars; reduction roots
    // are replaced by their scalar result directly.
    let users = em.f.users();
    let mut rauw: Vec<(InstId, InstId)> = Vec::new();
    for (&inst, _) in graph.covered.iter() {
        if em.f.ty(inst) == Type::Void {
            continue;
        }
        let external = users[inst.index()]
            .iter()
            .any(|u| !graph.covered.contains_key(u));
        if external {
            if let Some(&v) = em.reduction_values.get(&inst) {
                rauw.push((inst, v));
            } else {
                let x = em.resolve_scalar(inst)?;
                rauw.push((inst, x));
            }
        }
    }

    let new_insts = em.new_insts;
    let new_keys = em.new_keys;

    // Rewrite external uses *before* scheduling so SSA edges are accurate.
    for &(from, to) in &rauw {
        f.replace_all_uses(from, to);
    }

    schedule(f, block, graph, &positions, &new_insts, &new_keys)?;

    f.remove_dead_code();
    Ok(new_insts)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EmitState {
    Todo,
    InProgress,
    Done(InstId),
}

struct Emitter<'a> {
    f: &'a mut Function,
    graph: &'a SlpGraph,
    positions: &'a FxHashMap<InstId, usize>,
    state: Vec<EmitState>,
    new_insts: Vec<InstId>,
    /// Scheduling key (inherited block position) of each new instruction.
    new_keys: FxHashMap<InstId, usize>,
    extracts: FxHashMap<InstId, InstId>,
    /// Scalar results of reduction roots (replace the root directly).
    reduction_values: FxHashMap<InstId, InstId>,
}

impl Emitter<'_> {
    fn vector_ty(&self, scalar: InstId, width: u8) -> Type {
        match self.f.ty(scalar) {
            Type::Scalar(st) => Type::vector(st, width),
            ty => ty,
        }
    }

    fn create(&mut self, kind: InstKind, ty: Type, key: usize) -> InstId {
        let id = self.f.create_detached(kind, ty);
        self.new_insts.push(id);
        self.new_keys.insert(id, key);
        id
    }

    /// Inherited scheduling key of a node: the latest block position of
    /// any scalar it covers (or of its element definitions, for gathers).
    fn node_key(&self, n: NodeId) -> usize {
        let node = &self.graph.nodes[n];
        let mut key = 0;
        let scan = |key: &mut usize, insts: &[InstId]| {
            for &i in insts {
                if let Some(&p) = self.positions.get(&i) {
                    *key = (*key).max(p);
                }
            }
        };
        match &node.kind {
            NodeKind::Super(info) => {
                for t in &info.trunks {
                    scan(&mut key, t);
                }
            }
            _ => scan(&mut key, &node.scalars),
        }
        key
    }

    /// The vector value a scalar lane contributes to, extracted back out.
    fn resolve_scalar(&mut self, s: InstId) -> Result<InstId, CodegenError> {
        if let Some((n, lane)) = self.graph.lane_of(s) {
            if let Some(&x) = self.extracts.get(&s) {
                return Ok(x);
            }
            let v = self.emit_node(n)?;
            let key = self.node_key(n);
            let x = self.create(
                InstKind::ExtractElement {
                    vector: v,
                    lane: lane as u8,
                },
                self.f.ty(s),
                key,
            );
            self.extracts.insert(s, x);
            Ok(x)
        } else {
            Ok(s)
        }
    }

    fn emit_node(&mut self, n: NodeId) -> Result<InstId, CodegenError> {
        match self.state[n] {
            EmitState::Done(id) => return Ok(id),
            EmitState::InProgress => return Err(CodegenError::SchedulingCycle),
            EmitState::Todo => self.state[n] = EmitState::InProgress,
        }
        let node = self.graph.nodes[n].clone();
        let width = self.graph.width;
        let key = self.node_key(n);
        let vty = self.vector_ty(node.scalars[0], width);

        let id = match &node.kind {
            NodeKind::Gather {
                kind: GatherKind::Splat,
                ..
            } => {
                let v = self.resolve_scalar(node.scalars[0])?;
                self.create(
                    InstKind::Splat {
                        value: v,
                        lanes: width,
                    },
                    vty,
                    key,
                )
            }
            NodeKind::Gather { .. } => {
                let mut elems = Vec::with_capacity(node.scalars.len());
                for &s in &node.scalars {
                    elems.push(self.resolve_scalar(s)?);
                }
                self.create(
                    InstKind::BuildVector {
                        elems: elems.into_boxed_slice(),
                    },
                    vty,
                    key,
                )
            }
            NodeKind::Load => {
                let ptr = match self.f.kind(node.scalars[0]) {
                    InstKind::Load { ptr } => *ptr,
                    _ => unreachable!(),
                };
                self.create(InstKind::Load { ptr }, vty, key)
            }
            NodeKind::Permute { mask } => {
                let src = self.emit_node(node.operands[0])?;
                self.create(
                    InstKind::Shuffle {
                        a: src,
                        b: src,
                        mask: mask.clone().into_boxed_slice(),
                    },
                    vty,
                    key,
                )
            }
            NodeKind::LoadReversed => {
                // The last lane holds the lowest address; load wide from
                // there and reverse the lanes.
                let last = *node.scalars.last().expect("non-empty bundle");
                let ptr = match self.f.kind(last) {
                    InstKind::Load { ptr } => *ptr,
                    _ => unreachable!(),
                };
                let v = self.create(InstKind::Load { ptr }, vty, key);
                let mask: Vec<u8> = (0..width).rev().collect();
                self.create(
                    InstKind::Shuffle {
                        a: v,
                        b: v,
                        mask: mask.into_boxed_slice(),
                    },
                    vty,
                    key,
                )
            }
            NodeKind::Store => {
                let value = self.emit_node(node.operands[0])?;
                let ptr = match self.f.kind(node.scalars[0]) {
                    InstKind::Store { ptr, .. } => *ptr,
                    _ => unreachable!(),
                };
                self.create(InstKind::Store { ptr, value }, Type::Void, key)
            }
            NodeKind::Vector => match self.f.kind(node.scalars[0]).clone() {
                InstKind::Binary { op, .. } => {
                    let l = self.emit_node(node.operands[0])?;
                    let r = self.emit_node(node.operands[1])?;
                    self.create(InstKind::Binary { op, lhs: l, rhs: r }, vty, key)
                }
                InstKind::Unary { op, .. } => {
                    let o = self.emit_node(node.operands[0])?;
                    self.create(InstKind::Unary { op, operand: o }, vty, key)
                }
                InstKind::Select { .. } => {
                    let c = self.emit_node(node.operands[0])?;
                    let t = self.emit_node(node.operands[1])?;
                    let e = self.emit_node(node.operands[2])?;
                    self.create(
                        InstKind::Select {
                            cond: c,
                            on_true: t,
                            on_false: e,
                        },
                        vty,
                        key,
                    )
                }
                InstKind::Cmp { pred, .. } => {
                    let l = self.emit_node(node.operands[0])?;
                    let r = self.emit_node(node.operands[1])?;
                    self.create(
                        InstKind::Cmp {
                            pred,
                            lhs: l,
                            rhs: r,
                        },
                        vty,
                        key,
                    )
                }
                InstKind::Cast { kind, .. } => {
                    let o = self.emit_node(node.operands[0])?;
                    self.create(InstKind::Cast { kind, operand: o }, vty, key)
                }
                k => unreachable!("unexpected Vector node payload {k:?}"),
            },
            NodeKind::Alt { ops } => {
                let l = self.emit_node(node.operands[0])?;
                let r = self.emit_node(node.operands[1])?;
                self.create(
                    InstKind::BinaryLanewise {
                        ops: ops.clone().into_boxed_slice(),
                        lhs: l,
                        rhs: r,
                    },
                    vty,
                    key,
                )
            }
            NodeKind::Super(info) => {
                let mut slot_vals = Vec::with_capacity(node.operands.len());
                for &op in &node.operands {
                    slot_vals.push(self.emit_node(op)?);
                }
                self.emit_super_combine(info.family, &info.slot_signs, &slot_vals, vty, key)
            }
            NodeKind::Reduction(info) => {
                // Combine the partial-sum groups, reduce horizontally
                // with log2(VF) shuffle+op rounds, extract lane 0, fold
                // in any leftover scalar leaves.
                let mut acc = self.emit_node(node.operands[0])?;
                for &group in &node.operands[1..] {
                    let v = self.emit_node(group)?;
                    acc = self.create(
                        InstKind::Binary {
                            op: info.op,
                            lhs: acc,
                            rhs: v,
                        },
                        vty,
                        key,
                    );
                }
                let mut offset = width / 2;
                while offset >= 1 {
                    let mask: Vec<u8> = (0..width).map(|i| (i + offset) % width).collect();
                    let sh = self.create(
                        InstKind::Shuffle {
                            a: acc,
                            b: acc,
                            mask: mask.into_boxed_slice(),
                        },
                        vty,
                        key,
                    );
                    acc = self.create(
                        InstKind::Binary {
                            op: info.op,
                            lhs: acc,
                            rhs: sh,
                        },
                        vty,
                        key,
                    );
                    offset /= 2;
                }
                let sty = self.f.ty(node.scalars[0]);
                let mut result = self.create(
                    InstKind::ExtractElement {
                        vector: acc,
                        lane: 0,
                    },
                    sty,
                    key,
                );
                for &left in &info.leftover {
                    let v = self.resolve_scalar(left)?;
                    result = self.create(
                        InstKind::Binary {
                            op: info.op,
                            lhs: result,
                            rhs: v,
                        },
                        sty,
                        key,
                    );
                }
                // The reduction's value replaces the scalar root.
                self.reduction_values.insert(node.scalars[0], result);
                result
            }
        };
        self.state[n] = EmitState::Done(id);
        Ok(id)
    }

    /// Combines slot vectors according to per-lane signs (Super-Node).
    fn emit_super_combine(
        &mut self,
        family: OpFamily,
        slot_signs: &[Vec<Sign>],
        slot_vals: &[InstId],
        vty: Type,
        key: usize,
    ) -> InstId {
        let ops_of = |signs: &[Sign]| -> Vec<BinOp> {
            signs
                .iter()
                .map(|s| match s {
                    Sign::Plus => family.direct(),
                    Sign::Minus => family.inverse(),
                })
                .collect()
        };
        let uniform = |signs: &[Sign]| signs.iter().all(|&s| s == signs[0]);

        let mut acc = {
            let signs = &slot_signs[0];
            if signs.iter().all(|&s| s == Sign::Plus) {
                slot_vals[0]
            } else {
                // Fold against the identity element: 0 for add/sub,
                // 1 for mul/div.
                let st = vty.elem_scalar().expect("numeric vector");
                let ident = match family {
                    OpFamily::AddSub => Constant::zero(st),
                    OpFamily::MulDiv => Constant::one(st),
                };
                let c = self.create(InstKind::Const(ident), Type::Scalar(st), key);
                let lanes = vty.as_vector().expect("vector").lanes;
                let identvec = self.create(InstKind::Splat { value: c, lanes }, vty, key);
                if uniform(signs) {
                    self.create(
                        InstKind::Binary {
                            op: family.inverse(),
                            lhs: identvec,
                            rhs: slot_vals[0],
                        },
                        vty,
                        key,
                    )
                } else {
                    self.create(
                        InstKind::BinaryLanewise {
                            ops: ops_of(signs).into_boxed_slice(),
                            lhs: identvec,
                            rhs: slot_vals[0],
                        },
                        vty,
                        key,
                    )
                }
            }
        };
        for (j, signs) in slot_signs.iter().enumerate().skip(1) {
            acc = if uniform(signs) {
                let op = match signs[0] {
                    Sign::Plus => family.direct(),
                    Sign::Minus => family.inverse(),
                };
                self.create(
                    InstKind::Binary {
                        op,
                        lhs: acc,
                        rhs: slot_vals[j],
                    },
                    vty,
                    key,
                )
            } else {
                self.create(
                    InstKind::BinaryLanewise {
                        ops: ops_of(signs).into_boxed_slice(),
                        lhs: acc,
                        rhs: slot_vals[j],
                    },
                    vty,
                    key,
                )
            };
        }
        acc
    }
}

/// Rebuilds the block: keeps phis first and the terminator last, drops
/// covered scalars, and topologically orders the rest over SSA and
/// may-alias memory edges.
fn schedule(
    f: &mut Function,
    block: BlockId,
    graph: &SlpGraph,
    positions: &FxHashMap<InstId, usize>,
    new_insts: &[InstId],
    new_keys: &FxHashMap<InstId, usize>,
) -> Result<(), CodegenError> {
    let old: Vec<InstId> = f.block(block).insts().to_vec();
    let terminator = *old.last().expect("non-empty block");
    let mut phis = Vec::new();
    let mut items: Vec<InstId> = Vec::new();
    for &id in &old {
        if id == terminator {
            continue;
        }
        if matches!(f.kind(id), InstKind::Phi { .. }) {
            phis.push(id);
            continue;
        }
        if graph.covered.contains_key(&id) {
            continue; // replaced by vector code
        }
        items.push(id);
    }
    items.extend_from_slice(new_insts);

    // Scheduling keys: original position for old instructions, inherited
    // position for new ones (scaled so new instructions sort after the
    // old instruction at the same position).
    let key_of = |id: InstId| -> usize {
        if let Some(&p) = positions.get(&id) {
            p * 2
        } else {
            new_keys.get(&id).map(|&p| p * 2 + 1).unwrap_or(usize::MAX)
        }
    };

    let index: FxHashMap<InstId, usize> = items.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let n = items.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg: Vec<usize> = vec![0; n];
    let add_edge = |a: usize, b: usize, succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>| {
        if a != b && !succs[a].contains(&b) {
            succs[a].push(b);
            indeg[b] += 1;
        }
    };

    // SSA edges.
    for (i, &id) in items.iter().enumerate() {
        for op in f.kind(id).operands() {
            if let Some(&j) = index.get(&op) {
                add_edge(j, i, &mut succs, &mut indeg);
            }
        }
    }
    // Memory edges between may-aliasing operations, ordered by key.
    let mem_items: Vec<(usize, MemLoc, usize)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, &id)| MemLoc::of_inst(f, id).map(|loc| (i, loc, key_of(id))))
        .collect();
    for (ai, (a, la, ka)) in mem_items.iter().enumerate() {
        for (b, lb, kb) in mem_items.iter().skip(ai + 1) {
            if may_alias(f, la, lb) {
                if ka <= kb {
                    add_edge(*a, *b, &mut succs, &mut indeg);
                } else {
                    add_edge(*b, *a, &mut succs, &mut indeg);
                }
            }
        }
    }

    // Kahn's algorithm, picking the smallest key first for stability.
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order: Vec<InstId> = Vec::with_capacity(n);
    while !ready.is_empty() {
        let (pos, _) = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| key_of(items[i]))
            .expect("non-empty");
        let i = ready.swap_remove(pos);
        order.push(items[i]);
        for &s in &succs[i].clone() {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    if order.len() != n {
        return Err(CodegenError::SchedulingCycle);
    }

    let mut final_order = phis;
    final_order.extend(order);
    final_order.push(terminator);
    f.set_block_insts(block, final_order);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SlpConfig, SlpMode};
    use crate::ctx::BlockCtx;
    use crate::graph::build_graph;
    use snslp_cost::{CostModel, TargetDesc};
    use snslp_interp::{check_equivalent, ArgSpec};
    use snslp_ir::{FunctionBuilder, Param, ScalarType};

    /// a[i] = b[i] + c[i] for i in 0..2 (straight line).
    fn simple_add2() -> (Function, Vec<InstId>) {
        let mut fb = FunctionBuilder::new(
            "add2",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::noalias_ptr("c"),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let c = fb.func().param(2);
        let mut seeds = Vec::new();
        for i in 0..2 {
            let pb = fb.ptradd_const(b, 8 * i);
            let pc = fb.ptradd_const(c, 8 * i);
            let pa = fb.ptradd_const(a, 8 * i);
            let x = fb.load(ScalarType::F64, pb);
            let y = fb.load(ScalarType::F64, pc);
            let s = fb.add(x, y);
            seeds.push(fb.store(pa, s));
        }
        fb.ret(None);
        (fb.finish(), seeds)
    }

    fn vectorize(f: &mut Function, seeds: &[InstId], mode: SlpMode) {
        let ctx = BlockCtx::compute(f, f.entry());
        let cfg = SlpConfig::new(mode);
        let g = build_graph(f, &ctx, &cfg, seeds);
        apply(f, f.entry(), &g).unwrap();
        snslp_ir::verify(f).unwrap();
    }

    #[test]
    fn vectorizes_simple_adds() {
        let (mut f, seeds) = simple_add2();
        let orig = f.clone();
        vectorize(&mut f, &seeds, SlpMode::Slp);
        // Vector load ×2, vector add, vector store replace 2×(2 loads +
        // add + store).
        let kinds: Vec<String> = f
            .block(f.entry())
            .insts()
            .iter()
            .map(|&i| format!("{:?}", std::mem::discriminant(f.kind(i))))
            .collect();
        let _ = kinds;
        let n_vec_loads = f
            .block(f.entry())
            .insts()
            .iter()
            .filter(|&&i| {
                matches!(f.kind(i), InstKind::Load { .. }) && f.ty(i).as_vector().is_some()
            })
            .count();
        assert_eq!(n_vec_loads, 2, "{f}");
        // Behaviour unchanged.
        let args = vec![
            ArgSpec::F64Array(vec![0.0; 2]),
            ArgSpec::F64Array(vec![1.5, -2.0]),
            ArgSpec::F64Array(vec![4.0, 8.0]),
        ];
        let model = CostModel::new(TargetDesc::sse2_like());
        check_equivalent(&orig, &f, &args, &model).unwrap();
    }

    #[test]
    fn fig3_snslp_codegen_is_correct() {
        // Build the Fig. 3 kernel, vectorize with SN-SLP, and compare
        // against the scalar original on concrete inputs.
        let build = || {
            let mut fb = FunctionBuilder::new(
                "fig3",
                vec![
                    Param::noalias_ptr("a"),
                    Param::noalias_ptr("b"),
                    Param::noalias_ptr("c"),
                    Param::noalias_ptr("d"),
                ],
                Type::Void,
            );
            let a = fb.func().param(0);
            let b = fb.func().param(1);
            let c = fb.func().param(2);
            let d = fb.func().param(3);
            let ld = |base: InstId, k: i64, fb: &mut FunctionBuilder| {
                let q = fb.ptradd_const(base, 8 * k);
                fb.load(ScalarType::I64, q)
            };
            let b0 = ld(b, 0, &mut fb);
            let c0 = ld(c, 0, &mut fb);
            let d0 = ld(d, 0, &mut fb);
            let t0 = fb.sub(b0, c0);
            let r0 = fb.add(t0, d0);
            let s0 = fb.store(a, r0);
            let b1 = ld(b, 1, &mut fb);
            let d1 = ld(d, 1, &mut fb);
            let c1 = ld(c, 1, &mut fb);
            let t1 = fb.add(b1, d1);
            let r1 = fb.sub(t1, c1);
            let pa1 = fb.ptradd_const(a, 8);
            let s1 = fb.store(pa1, r1);
            fb.ret(None);
            (fb.finish(), vec![s0, s1])
        };
        let (orig, _) = build();
        let (mut f, seeds) = build();
        vectorize(&mut f, &seeds, SlpMode::SnSlp);
        // All scalar adds/subs gone: only vector ops remain.
        let scalar_arith = f
            .block(f.entry())
            .insts()
            .iter()
            .filter(|&&i| {
                matches!(f.kind(i), InstKind::Binary { .. }) && f.ty(i).as_scalar().is_some()
            })
            .count();
        assert_eq!(scalar_arith, 0, "{f}");

        let args = vec![
            ArgSpec::I64Array(vec![0, 0]),
            ArgSpec::I64Array(vec![100, 200]),
            ArgSpec::I64Array(vec![7, 11]),
            ArgSpec::I64Array(vec![1000, 2000]),
        ];
        let model = CostModel::new(TargetDesc::sse2_like());
        check_equivalent(&orig, &f, &args, &model).unwrap();
        // Expected values: lane0 = 100-7+1000, lane1 = 200+2000-11.
        let (out, _) = check_equivalent(&orig, &f, &args, &model).unwrap();
        assert_eq!(
            out.arrays[0],
            snslp_interp::ArrayData::I64(vec![1093, 2189])
        );
    }

    #[test]
    fn external_use_gets_extract() {
        let mut fb = FunctionBuilder::new(
            "t",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::noalias_ptr("e"),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let e = fb.func().param(2);
        let b0 = fb.load(ScalarType::I64, b);
        let pb1 = fb.ptradd_const(b, 8);
        let b1 = fb.load(ScalarType::I64, pb1);
        let r0 = fb.add(b0, b0);
        let r1 = fb.add(b1, b1);
        let s0 = fb.store(a, r0);
        let pa1 = fb.ptradd_const(a, 8);
        let s1 = fb.store(pa1, r1);
        fb.store(e, r0);
        fb.ret(None);
        let mut f = fb.finish();
        let orig = f.clone();
        vectorize(&mut f, &[s0, s1], SlpMode::Slp);
        let extracts = f
            .block(f.entry())
            .insts()
            .iter()
            .filter(|&&i| matches!(f.kind(i), InstKind::ExtractElement { .. }))
            .count();
        assert_eq!(extracts, 1, "{f}");
        let args = vec![
            ArgSpec::I64Array(vec![0, 0]),
            ArgSpec::I64Array(vec![21, 30]),
            ArgSpec::I64Array(vec![0]),
        ];
        let model = CostModel::new(TargetDesc::sse2_like());
        let (out, _) = check_equivalent(&orig, &f, &args, &model).unwrap();
        assert_eq!(out.arrays[2], snslp_interp::ArrayData::I64(vec![42]));
    }

    #[test]
    fn gather_of_mixed_scalars_uses_buildvector() {
        // Values: lane0 = x * k1, lane1 = y * k2 — constants gather.
        let mut fb = FunctionBuilder::new(
            "t",
            vec![Param::noalias_ptr("a"), Param::noalias_ptr("b")],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let x = fb.load(ScalarType::F64, b);
        let pb1 = fb.ptradd_const(b, 8);
        let y = fb.load(ScalarType::F64, pb1);
        let k1 = fb.const_f64(2.0);
        let k2 = fb.const_f64(3.0);
        let r0 = fb.mul(x, k1);
        let r1 = fb.mul(y, k2);
        let s0 = fb.store(a, r0);
        let pa1 = fb.ptradd_const(a, 8);
        let s1 = fb.store(pa1, r1);
        fb.ret(None);
        let mut f = fb.finish();
        let orig = f.clone();
        vectorize(&mut f, &[s0, s1], SlpMode::Slp);
        let buildvecs = f
            .block(f.entry())
            .insts()
            .iter()
            .filter(|&&i| matches!(f.kind(i), InstKind::BuildVector { .. }))
            .count();
        assert_eq!(buildvecs, 1, "{f}");
        let args = vec![
            ArgSpec::F64Array(vec![0.0, 0.0]),
            ArgSpec::F64Array(vec![10.0, 10.0]),
        ];
        let model = CostModel::new(TargetDesc::sse2_like());
        let (out, _) = check_equivalent(&orig, &f, &args, &model).unwrap();
        assert_eq!(
            out.arrays[0],
            snslp_interp::ArrayData::F64(vec![20.0, 30.0])
        );
    }

    #[test]
    fn slot0_negative_sign_folds_against_identity() {
        // lane0: -b0 - c0 + d0  is not expressible without unary neg, so
        // build:  (d0 - b0) - c0  vs lane1:  (d1 - c1) - b1.
        // After reordering, some slot patterns force a minus slot 0 only
        // if the planner picks a minus anchor first; we instead verify
        // end-to-end semantics, whatever the plan.
        let build = || {
            let mut fb = FunctionBuilder::new(
                "t",
                vec![
                    Param::noalias_ptr("a"),
                    Param::noalias_ptr("b"),
                    Param::noalias_ptr("c"),
                    Param::noalias_ptr("d"),
                ],
                Type::Void,
            );
            let a = fb.func().param(0);
            let b = fb.func().param(1);
            let c = fb.func().param(2);
            let d = fb.func().param(3);
            let ld = |base: InstId, k: i64, fb: &mut FunctionBuilder| {
                let q = fb.ptradd_const(base, 8 * k);
                fb.load(ScalarType::I64, q)
            };
            let b0 = ld(b, 0, &mut fb);
            let c0 = ld(c, 0, &mut fb);
            let d0 = ld(d, 0, &mut fb);
            let t0 = fb.sub(d0, b0);
            let r0 = fb.sub(t0, c0);
            let s0 = fb.store(a, r0);
            let b1 = ld(b, 1, &mut fb);
            let c1 = ld(c, 1, &mut fb);
            let d1 = ld(d, 1, &mut fb);
            let t1 = fb.sub(d1, c1);
            let r1 = fb.sub(t1, b1);
            let pa1 = fb.ptradd_const(a, 8);
            let s1 = fb.store(pa1, r1);
            fb.ret(None);
            (fb.finish(), vec![s0, s1])
        };
        let (orig, _) = build();
        let (mut f, seeds) = build();
        vectorize(&mut f, &seeds, SlpMode::SnSlp);
        let args = vec![
            ArgSpec::I64Array(vec![0, 0]),
            ArgSpec::I64Array(vec![5, 6]),
            ArgSpec::I64Array(vec![70, 80]),
            ArgSpec::I64Array(vec![1000, 1001]),
        ];
        let model = CostModel::new(TargetDesc::sse2_like());
        let (out, _) = check_equivalent(&orig, &f, &args, &model).unwrap();
        // lane0: 1000-5-70 = 925; lane1: 1001-80-6 = 915.
        assert_eq!(out.arrays[0], snslp_interp::ArrayData::I64(vec![925, 915]));
    }

    #[test]
    fn extract_is_reused_across_external_users() {
        // r0 has two external scalar users; only one extract is emitted.
        let mut fb = FunctionBuilder::new(
            "t",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::noalias_ptr("e"),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let e = fb.func().param(2);
        let b0 = fb.load(ScalarType::I64, b);
        let pb1 = fb.ptradd_const(b, 8);
        let b1 = fb.load(ScalarType::I64, pb1);
        let r0 = fb.add(b0, b0);
        let r1 = fb.add(b1, b1);
        let s0 = fb.store(a, r0);
        let pa1 = fb.ptradd_const(a, 8);
        let s1 = fb.store(pa1, r1);
        fb.store(e, r0);
        let pe1 = fb.ptradd_const(e, 8);
        let dbl = fb.add(r0, r0); // second external user
        fb.store(pe1, dbl);
        fb.ret(None);
        let mut f = fb.finish();
        let orig = f.clone();
        vectorize(&mut f, &[s0, s1], SlpMode::Slp);
        let extracts = f
            .block(f.entry())
            .insts()
            .iter()
            .filter(|&&i| matches!(f.kind(i), InstKind::ExtractElement { .. }))
            .count();
        assert_eq!(extracts, 1, "one extract serves both users: {f}");
        let args = vec![
            ArgSpec::I64Array(vec![0, 0]),
            ArgSpec::I64Array(vec![21, 30]),
            ArgSpec::I64Array(vec![0, 0]),
        ];
        let model = CostModel::new(TargetDesc::sse2_like());
        let (out, _) = check_equivalent(&orig, &f, &args, &model).unwrap();
        assert_eq!(out.arrays[2], snslp_interp::ArrayData::I64(vec![42, 84]));
    }

    #[test]
    fn scheduler_keeps_unrelated_memory_order() {
        // An unrelated store to a different noalias array sits between the
        // bundled stores; it must survive and stay correctly ordered.
        let mut fb = FunctionBuilder::new(
            "t",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::noalias_ptr("z"),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let z = fb.func().param(2);
        let b0 = fb.load(ScalarType::I64, b);
        let pb1 = fb.ptradd_const(b, 8);
        let b1 = fb.load(ScalarType::I64, pb1);
        let r0 = fb.add(b0, b0);
        let r1 = fb.add(b1, b1);
        let s0 = fb.store(a, r0);
        let k = fb.const_i64(7);
        fb.store(z, k); // unrelated, between the seed stores
        let pa1 = fb.ptradd_const(a, 8);
        let s1 = fb.store(pa1, r1);
        fb.ret(None);
        let mut f = fb.finish();
        let orig = f.clone();
        vectorize(&mut f, &[s0, s1], SlpMode::Slp);
        let args = vec![
            ArgSpec::I64Array(vec![0, 0]),
            ArgSpec::I64Array(vec![1, 2]),
            ArgSpec::I64Array(vec![0]),
        ];
        let model = CostModel::new(TargetDesc::sse2_like());
        let (out, _) = check_equivalent(&orig, &f, &args, &model).unwrap();
        assert_eq!(out.arrays[2], snslp_interp::ArrayData::I64(vec![7]));
    }
}
