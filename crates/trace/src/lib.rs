//! `snslp-trace`: structured pass tracing, optimization remarks and a
//! metrics registry for the SN-SLP vectorization pipeline.
//!
//! The crate has three layers, all off by default and enabled per *facet*
//! through the `SNSLP_TRACE` environment variable (or programmatically via
//! [`set_facets`]):
//!
//! - **Events** ([`trace_event!`], [`Span`]): structured point events and
//!   timed spans from inside the pipeline. Zero-cost when disabled — one
//!   relaxed atomic load, no allocation, field expressions not evaluated.
//! - **Remarks** ([`Remark`], [`ReasonCode`]): one machine-readable record
//!   per seed bundle the vectorizer considered — vectorized or rejected,
//!   with a stable reason code — in the spirit of LLVM's `-Rpass`.
//! - **Metrics** ([`Counter`], [`Stage`], [`MetricsSnapshot`]): named
//!   counters and stage wall timers. Collection is always on (thread-local
//!   `Cell` increments); the facet gates emission only.
//!
//! A fourth facet, **Dot**, makes the pass dump SLP graphs as Graphviz
//! DOT artifacts at fixed pipeline points (pre-reorder, post-reorder,
//! final), either inline to the sink or as files under `dot=DIR`.
//!
//! A fifth facet, **Prof**, drives the hierarchical self-profiler in
//! [`prof`]: nested timed spans per thread, exported as Chrome
//! trace/Perfetto JSON, folded flamegraph stacks, or a `--time-passes`
//! table. Timing everywhere in the crate goes through the injectable
//! [`clock`], whose deterministic virtual mode makes timed golden tests
//! byte-stable.
//!
//! # `SNSLP_TRACE` syntax
//!
//! Comma-separated facet list, e.g.:
//!
//! ```text
//! SNSLP_TRACE=remarks            # remarks to stderr, text
//! SNSLP_TRACE=events,metrics     # span/event stream plus counters
//! SNSLP_TRACE=all,json           # everything, one JSON object per line
//! SNSLP_TRACE=dot=/tmp/slpdot    # write DOT files under /tmp/slpdot
//! ```
//!
//! `json` is a modifier, not a facet: it switches the sink to JSON lines.

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

pub mod clock;
pub mod decision;
mod event;
pub mod hist;
pub mod metrics;
pub mod prof;
pub mod remark;
pub mod serve;
pub mod sink;

pub use decision::DecisionId;
pub use event::{emit_event, Span};
pub use hist::{HistSnapshot, Histogram};
pub use metrics::{add, bump, Counter, MetricsSnapshot, Stage, StageTimer};
pub use prof::{counter as prof_counter, ProfSpan, Profile};
pub use remark::{ReasonCode, Remark};
pub use sink::{BufferSink, JsonSink, Record, RecordKind, Sink, TextSink, Value};

/// A trace facet: an independently switchable slice of instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Facet {
    /// Structured point events and spans.
    Events = 1 << 0,
    /// Per-seed-bundle optimization remarks.
    Remarks = 1 << 1,
    /// Metrics registry emission.
    Metrics = 1 << 2,
    /// Graphviz DOT dumps of SLP graphs.
    Dot = 1 << 3,
    /// Hierarchical self-profiler spans and counter tracks ([`prof`]).
    Prof = 1 << 4,
}

const ALL_FACETS: u32 = Facet::Events as u32
    | Facet::Remarks as u32
    | Facet::Metrics as u32
    | Facet::Dot as u32
    | Facet::Prof as u32;

/// Enabled-facet bitmask. Zero (everything off) until [`init_from_env`]
/// or [`set_facets`] runs, so library users who never opt in pay one
/// relaxed load per instrumentation site and nothing more.
static FACETS: AtomicU32 = AtomicU32::new(0);

/// The global sink. `None` means "default text sink" (constructed lazily
/// so the common disabled path never touches this mutex).
static SINK: Mutex<Option<Box<dyn Sink>>> = Mutex::new(None);

/// Directory for DOT artifacts (`SNSLP_TRACE=dot=DIR`). When unset, DOT
/// content is emitted inline to the sink.
static DOT_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Is this facet enabled? One relaxed atomic load; safe to call on the
/// hottest paths.
#[inline]
pub fn enabled(facet: Facet) -> bool {
    FACETS.load(Ordering::Relaxed) & facet as u32 != 0
}

/// Replace the enabled-facet set, returning the previous mask. The mask is
/// a bitwise OR of [`Facet`] values.
pub fn set_facets(mask: u32) -> u32 {
    FACETS.swap(mask & ALL_FACETS, Ordering::Relaxed)
}

/// Current facet mask.
pub fn facets() -> u32 {
    FACETS.load(Ordering::Relaxed)
}

/// Install a sink, returning the previous one (`None` = default text).
pub fn set_sink(sink: Option<Box<dyn Sink>>) -> Option<Box<dyn Sink>> {
    std::mem::replace(&mut *SINK.lock().unwrap_or_else(|e| e.into_inner()), sink)
}

/// Directory DOT artifacts are written to, if configured.
pub fn dot_dir() -> Option<PathBuf> {
    DOT_DIR.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Set (or clear) the DOT artifact directory.
pub fn set_dot_dir(dir: Option<PathBuf>) {
    *DOT_DIR.lock().unwrap_or_else(|e| e.into_inner()) = dir;
}

thread_local! {
    /// Per-thread capture buffer. `Some` while a [`RecordCapture`] guard
    /// is live on this thread; records are diverted here instead of the
    /// global sink so parallel workers never interleave their streams.
    static CAPTURE: RefCell<Option<Vec<Record>>> = const { RefCell::new(None) };
}

/// RAII guard diverting this thread's records into a private buffer.
///
/// While the guard is live, every [`emit_record`] on the calling thread
/// appends to the buffer instead of reaching the global sink. Call
/// [`RecordCapture::finish`] to take the buffered records; the parallel
/// module driver replays them with [`replay_records`] in deterministic
/// function order, making the parallel trace stream byte-identical to a
/// serial run. Guards do not nest: creating a second guard on the same
/// thread would lose the first buffer, so `begin` panics instead.
#[must_use = "dropping the guard discards captured records"]
pub struct RecordCapture {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl RecordCapture {
    /// Start diverting this thread's records.
    ///
    /// # Panics
    ///
    /// Panics if a capture is already active on this thread.
    pub fn begin() -> Self {
        CAPTURE.with(|c| {
            let mut slot = c.borrow_mut();
            assert!(slot.is_none(), "record capture already active on thread");
            *slot = Some(Vec::new());
        });
        RecordCapture {
            _not_send: std::marker::PhantomData,
        }
    }

    /// Stop capturing and return the buffered records in emission order.
    pub fn finish(self) -> Vec<Record> {
        CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default()
    }
}

impl Drop for RecordCapture {
    fn drop(&mut self) {
        // `finish` already cleared the slot; this handles early drops
        // (panics) so the thread is reusable.
        CAPTURE.with(|c| c.borrow_mut().take());
    }
}

/// Replay previously captured records to the global sink, preserving
/// order. Used by the parallel driver after sorting worker output.
pub fn replay_records(records: Vec<Record>) {
    for rec in records {
        emit_record(rec);
    }
}

/// Route a record to the active thread-local capture buffer if one is
/// live, else to the global sink. Callers are expected to have checked
/// the relevant facet already.
pub fn emit_record(rec: Record) {
    let rec = match CAPTURE.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                buf.push(rec);
                None
            }
            None => Some(rec),
        }
    }) {
        Some(rec) => rec,
        None => return,
    };
    let mut slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
    match slot.as_mut() {
        Some(sink) => sink.record(&rec),
        None => TextSink.record(&rec),
    }
}

/// Parsed form of an `SNSLP_TRACE` value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSpec {
    pub facets: u32,
    pub json: bool,
    pub dot_dir: Option<PathBuf>,
}

/// Parse an `SNSLP_TRACE` value. Unknown tokens are errors so typos fail
/// loudly instead of silently tracing nothing.
pub fn parse_spec(spec: &str) -> Result<TraceSpec, String> {
    let mut out = TraceSpec::default();
    for token in spec.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        match token {
            "events" => out.facets |= Facet::Events as u32,
            "remarks" => out.facets |= Facet::Remarks as u32,
            "metrics" => out.facets |= Facet::Metrics as u32,
            "dot" => out.facets |= Facet::Dot as u32,
            "prof" => out.facets |= Facet::Prof as u32,
            "all" => out.facets |= ALL_FACETS,
            "json" => out.json = true,
            _ => {
                if let Some(dir) = token.strip_prefix("dot=") {
                    out.facets |= Facet::Dot as u32;
                    out.dot_dir = Some(PathBuf::from(dir));
                } else {
                    return Err(format!(
                        "unknown SNSLP_TRACE token `{token}`\n  \
                         valid facets: events, remarks, metrics, dot, dot=DIR, \
                         prof, all\n  \
                         valid sinks:  json (JSON lines; default is text to stderr)"
                    ));
                }
            }
        }
    }
    Ok(out)
}

/// Apply a parsed spec to the global configuration.
pub fn apply_spec(spec: &TraceSpec) {
    set_facets(spec.facets);
    set_dot_dir(spec.dot_dir.clone());
    set_sink(if spec.json {
        Some(Box::new(JsonSink))
    } else {
        None
    });
}

/// Configure tracing from the `SNSLP_TRACE` environment variable. Call
/// once at binary startup; a missing variable leaves everything off.
/// Returns an error (and leaves the configuration untouched) on a
/// malformed value.
pub fn init_from_env() -> Result<(), String> {
    match std::env::var("SNSLP_TRACE") {
        Ok(value) => {
            let spec = parse_spec(&value)?;
            apply_spec(&spec);
            Ok(())
        }
        Err(_) => Ok(()),
    }
}

/// Emit (or write) a named artifact — e.g. a DOT graph. If a `dot=DIR`
/// directory is configured the content is written to `DIR/<filename>` and
/// an `artifact` record notes the path; otherwise the content itself is
/// carried on the record. Returns the path written, if any.
pub fn artifact(name: &str, filename: &str, content: &str) -> Option<PathBuf> {
    if !enabled(Facet::Dot) {
        return None;
    }
    if let Some(dir) = dot_dir() {
        let path = dir.join(filename);
        let write = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, content));
        match write {
            Ok(()) => {
                emit_record(
                    Record::new(RecordKind::Artifact, name)
                        .with("path", path.display().to_string()),
                );
                return Some(path);
            }
            Err(err) => {
                emit_record(Record::new(RecordKind::Artifact, name).with("error", err.to_string()));
                return None;
            }
        }
    }
    emit_record(
        Record::new(RecordKind::Artifact, name)
            .with("filename", filename)
            .with("content", content),
    );
    None
}

/// Serializes tests (and tools) that reconfigure the global facets/sink.
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Test support: run `f` with the given facet mask and a buffer sink
/// installed, then restore the previous configuration and return the
/// rendered text lines emitted during `f`.
///
/// Takes a global lock so concurrent tests cannot interleave records.
pub fn capture<F: FnOnce()>(facet_mask: u32, f: F) -> Vec<String> {
    capture_rendered(facet_mask, false, f)
}

/// Like [`capture`], but renders each record as one JSON object per line
/// — the NDJSON form consumers such as the access-log validator parse.
pub fn capture_json<F: FnOnce()>(facet_mask: u32, f: F) -> Vec<String> {
    capture_rendered(facet_mask, true, f)
}

fn capture_rendered<F: FnOnce()>(facet_mask: u32, json: bool, f: F) -> Vec<String> {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let buffer = if json {
        BufferSink::new_json()
    } else {
        BufferSink::new()
    };
    let lines = buffer.lines();
    let prev_sink = set_sink(Some(Box::new(buffer)));
    let prev_facets = set_facets(facet_mask);
    f();
    set_facets(prev_facets);
    set_sink(prev_sink);
    let mut out = lines.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut *out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spec_handles_facets_and_modifiers() {
        let spec = parse_spec("events, remarks").unwrap();
        assert_eq!(spec.facets, Facet::Events as u32 | Facet::Remarks as u32);
        assert!(!spec.json);

        let spec = parse_spec("all,json").unwrap();
        assert_eq!(spec.facets, ALL_FACETS);
        assert!(spec.json);

        let spec = parse_spec("dot=/tmp/x").unwrap();
        assert_eq!(spec.facets, Facet::Dot as u32);
        assert_eq!(spec.dot_dir, Some(PathBuf::from("/tmp/x")));

        let spec = parse_spec("prof").unwrap();
        assert_eq!(spec.facets, Facet::Prof as u32);

        let err = parse_spec("remark").unwrap_err();
        assert!(err.contains("unknown SNSLP_TRACE token `remark`"));
        assert!(err.contains("valid facets: events, remarks, metrics, dot, dot=DIR, prof, all"));
        assert!(err.contains("valid sinks:  json"));
        assert!(parse_spec("").unwrap().facets == 0);
    }

    #[test]
    fn capture_records_and_restores() {
        let lines = capture(Facet::Events as u32, || {
            crate::trace_event!("test.captured", "n" => 7u64);
        });
        assert_eq!(lines, vec!["[snslp] event test.captured n=7".to_string()]);
        // Restored: facet off again, event macro is inert.
        let lines = capture(0, || {
            crate::trace_event!("test.not_captured");
        });
        assert!(lines.is_empty());
    }

    #[test]
    fn capture_remark_stream() {
        let remark = Remark {
            pass: "snslp".to_string(),
            function: "@f".to_string(),
            block: "entry".to_string(),
            site: "%t1".to_string(),
            inst: 1,
            decision: DecisionId::new("f", "entry", 0, 1),
            seed_kind: "store".to_string(),
            width: 4,
            vectorized: false,
            reason: ReasonCode::Cost,
            cost: Some(2),
            detail: String::new(),
        };
        let lines = capture(Facet::Remarks as u32, || remark.emit());
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("reason=cost"));
        assert!(lines[0].contains("cost=2"));
        // With the facet off, emit is a no-op.
        let lines = capture(0, || remark.emit());
        assert!(lines.is_empty());
    }

    #[test]
    fn record_capture_diverts_and_replays() {
        let lines = capture(Facet::Events as u32, || {
            let guard = RecordCapture::begin();
            crate::trace_event!("test.buffered", "n" => 1u64);
            crate::trace_event!("test.buffered", "n" => 2u64);
            let records = guard.finish();
            // Nothing reached the sink while the guard was live.
            assert_eq!(records.len(), 2);
            replay_records(records);
        });
        assert_eq!(
            lines,
            vec![
                "[snslp] event test.buffered n=1".to_string(),
                "[snslp] event test.buffered n=2".to_string(),
            ]
        );
    }

    #[test]
    fn record_capture_clears_on_drop() {
        let lines = capture(Facet::Events as u32, || {
            {
                let _guard = RecordCapture::begin();
                crate::trace_event!("test.dropped");
            }
            // Guard dropped without finish: records discarded, thread
            // reusable for a fresh capture.
            let guard = RecordCapture::begin();
            guard.finish();
            crate::trace_event!("test.direct");
        });
        assert_eq!(lines, vec!["[snslp] event test.direct".to_string()]);
    }

    #[test]
    fn artifact_inline_when_no_dir() {
        let lines = capture(Facet::Dot as u32, || {
            artifact("dot.final", "g.dot", "digraph g {}");
        });
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("artifact dot.final"));
        assert!(lines[0].contains("digraph g {}"));
    }
}
