//! Per-pass metrics registry: named counters and stage wall-clock timers.
//!
//! Counters are *always on*: they are plain thread-local `Cell<u64>`
//! increments (one predictable add on the hot path, no allocation, no
//! atomics), so the pipeline can unconditionally bump them and the pass
//! driver snapshots them around each function. The `metrics` trace facet
//! only gates *emission* to the sink, never collection.
//!
//! Thread-locality is deliberate: `cargo test` runs tests on many threads,
//! and a process-global registry would make exact-value assertions flaky.
//! A pass run is single-threaded, so a snapshot delta taken on the running
//! thread is exact.

use std::cell::Cell;
use std::fmt;

use crate::clock;
use crate::sink::{Record, RecordKind};

/// Named pipeline counters. Keep in sync with [`Counter::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Store/reduction seed bundles collected.
    SeedsCollected,
    /// Bundles the graph builder attempted to vectorize.
    BundlesAttempted,
    /// Pairwise look-ahead score evaluations.
    LookaheadScoreEvals,
    /// Look-ahead score requests answered from the memo cache.
    LookaheadCacheHits,
    /// Look-ahead score requests that had to be computed (cache misses).
    LookaheadCacheMisses,
    /// Commutative leaf reorderings applied by Super-Node planning.
    LeafMoves,
    /// Trunk-assisted (inverse-element) moves applied by Super-Node planning.
    TrunkAssistedMoves,
    /// Gather nodes emitted into SLP graphs.
    GathersEmitted,
    /// Cost-model queries (per-node cost evaluations).
    CostModelQueries,
    /// SLP graphs actually vectorized by codegen.
    GraphsVectorized,
    /// Compile-artifact cache lookups answered without recompiling.
    ArtifactCacheHits,
    /// Compile-artifact cache lookups that required a compile.
    ArtifactCacheMisses,
    /// Compile-artifact cache entries evicted to stay under capacity.
    ArtifactCacheEvictions,
    /// Optimization remarks produced.
    RemarksEmitted,
    /// Machine-code bytes emitted by the native JIT backend.
    JitBytesEmitted,
    /// IR instructions lowered to native code by the JIT backend.
    JitOpsLowered,
    /// Functions the JIT backend refused, falling back to the interpreter.
    JitFallbacks,
}

impl Counter {
    pub const ALL: [Counter; 17] = [
        Counter::SeedsCollected,
        Counter::BundlesAttempted,
        Counter::LookaheadScoreEvals,
        Counter::LookaheadCacheHits,
        Counter::LookaheadCacheMisses,
        Counter::LeafMoves,
        Counter::TrunkAssistedMoves,
        Counter::GathersEmitted,
        Counter::CostModelQueries,
        Counter::GraphsVectorized,
        Counter::ArtifactCacheHits,
        Counter::ArtifactCacheMisses,
        Counter::ArtifactCacheEvictions,
        Counter::RemarksEmitted,
        Counter::JitBytesEmitted,
        Counter::JitOpsLowered,
        Counter::JitFallbacks,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Counter::SeedsCollected => "seeds_collected",
            Counter::BundlesAttempted => "bundles_attempted",
            Counter::LookaheadScoreEvals => "lookahead_score_evals",
            Counter::LookaheadCacheHits => "lookahead_cache_hits",
            Counter::LookaheadCacheMisses => "lookahead_cache_misses",
            Counter::LeafMoves => "leaf_moves",
            Counter::TrunkAssistedMoves => "trunk_assisted_moves",
            Counter::GathersEmitted => "gathers_emitted",
            Counter::CostModelQueries => "cost_model_queries",
            Counter::GraphsVectorized => "graphs_vectorized",
            Counter::ArtifactCacheHits => "artifact_cache_hits",
            Counter::ArtifactCacheMisses => "artifact_cache_misses",
            Counter::ArtifactCacheEvictions => "artifact_cache_evictions",
            Counter::RemarksEmitted => "remarks_emitted",
            Counter::JitBytesEmitted => "jit_bytes_emitted",
            Counter::JitOpsLowered => "jit_ops_lowered",
            Counter::JitFallbacks => "jit_fallbacks",
        }
    }
}

/// Pipeline stages timed by [`StageTimer`]. Keep in sync with [`Stage::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// O3-style cleanup pipeline before SLP.
    Cleanup,
    /// Seed collection (stores + reductions).
    Seeds,
    /// SLP graph construction (including Super-Node planning).
    GraphBuild,
    /// Cost-model evaluation of built graphs.
    CostEval,
    /// Vector code emission and scheduling.
    Codegen,
}

impl Stage {
    pub const ALL: [Stage; 5] = [
        Stage::Cleanup,
        Stage::Seeds,
        Stage::GraphBuild,
        Stage::CostEval,
        Stage::Codegen,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::Cleanup => "cleanup",
            Stage::Seeds => "seeds",
            Stage::GraphBuild => "graph_build",
            Stage::CostEval => "cost_eval",
            Stage::Codegen => "codegen",
        }
    }
}

const NUM_COUNTERS: usize = Counter::ALL.len();
const NUM_STAGES: usize = Stage::ALL.len();

thread_local! {
    static COUNTERS: [Cell<u64>; NUM_COUNTERS] =
        const { [const { Cell::new(0) }; NUM_COUNTERS] };
    static STAGE_NANOS: [Cell<u64>; NUM_STAGES] =
        const { [const { Cell::new(0) }; NUM_STAGES] };
}

/// Increment a counter by one. Always on; see module docs.
#[inline]
pub fn bump(counter: Counter) {
    add(counter, 1);
}

/// Increment a counter by `n`.
#[inline]
pub fn add(counter: Counter, n: u64) {
    COUNTERS.with(|c| {
        let cell = &c[counter as usize];
        cell.set(cell.get().wrapping_add(n));
    });
}

/// RAII wall-clock timer attributing elapsed time to a pipeline stage.
#[must_use = "the timer records on drop"]
pub struct StageTimer {
    stage: Stage,
    start_ns: u64,
}

impl StageTimer {
    pub fn start(stage: Stage) -> Self {
        StageTimer {
            stage,
            start_ns: clock::now_ns(),
        }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        let nanos = clock::now_ns().saturating_sub(self.start_ns);
        STAGE_NANOS.with(|s| {
            let cell = &s[self.stage as usize];
            cell.set(cell.get().wrapping_add(nanos));
        });
    }
}

/// Point-in-time copy of this thread's registry. Subtract two snapshots
/// (via [`MetricsSnapshot::delta_since`]) to attribute work to one
/// function or one pass invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; NUM_COUNTERS],
    stage_nanos: [u64; NUM_STAGES],
}

impl MetricsSnapshot {
    /// Snapshot the calling thread's registry.
    pub fn current() -> Self {
        let counters = COUNTERS.with(|c| std::array::from_fn(|i| c[i].get()));
        let stage_nanos = STAGE_NANOS.with(|s| std::array::from_fn(|i| s[i].get()));
        MetricsSnapshot {
            counters,
            stage_nanos,
        }
    }

    /// The work done between `earlier` and `self`.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| self.counters[i].wrapping_sub(earlier.counters[i])),
            stage_nanos: std::array::from_fn(|i| {
                self.stage_nanos[i].wrapping_sub(earlier.stage_nanos[i])
            }),
        }
    }

    /// Accumulate another snapshot's deltas into this one.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for i in 0..NUM_COUNTERS {
            self.counters[i] = self.counters[i].wrapping_add(other.counters[i]);
        }
        for i in 0..NUM_STAGES {
            self.stage_nanos[i] = self.stage_nanos[i].wrapping_add(other.stage_nanos[i]);
        }
    }

    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stage_nanos[stage as usize]
    }

    /// Deterministic machine rendering: counters only, stable order, no
    /// timing (suitable for golden tests).
    pub fn machine(&self) -> String {
        let mut out = String::new();
        for (i, counter) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(counter.name());
            out.push('=');
            out.push_str(&self.get(*counter).to_string());
        }
        out
    }

    /// Emit one `metric` record per counter plus one per nonzero stage
    /// timer, if the `metrics` facet is enabled.
    pub fn emit(&self, scope: &str) {
        if !crate::enabled(crate::Facet::Metrics) {
            return;
        }
        for counter in Counter::ALL {
            crate::emit_record(
                Record::new(RecordKind::Metric, format!("metrics.{}", counter.name()))
                    .with("scope", scope)
                    .with("value", self.get(counter)),
            );
        }
        for stage in Stage::ALL {
            let nanos = self.stage_nanos(stage);
            if nanos == 0 {
                continue;
            }
            crate::emit_record(
                Record::new(
                    RecordKind::Metric,
                    format!("metrics.stage.{}", stage.name()),
                )
                .with("scope", scope)
                .with("micros", nanos / 1_000),
            );
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics:")?;
        for counter in Counter::ALL {
            writeln!(f, "  {:<24} {}", counter.name(), self.get(counter))?;
        }
        for stage in Stage::ALL {
            let nanos = self.stage_nanos(stage);
            if nanos != 0 {
                writeln!(
                    f,
                    "  stage.{:<18} {:.1}us",
                    stage.name(),
                    nanos as f64 / 1e3
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_delta() {
        let before = MetricsSnapshot::current();
        bump(Counter::LeafMoves);
        add(Counter::GathersEmitted, 3);
        let delta = MetricsSnapshot::current().delta_since(&before);
        assert_eq!(delta.get(Counter::LeafMoves), 1);
        assert_eq!(delta.get(Counter::GathersEmitted), 3);
        assert_eq!(delta.get(Counter::SeedsCollected), 0);
    }

    #[test]
    fn stage_timer_records_on_drop() {
        let before = MetricsSnapshot::current();
        {
            let _t = StageTimer::start(Stage::Seeds);
            std::hint::black_box(());
        }
        let delta = MetricsSnapshot::current().delta_since(&before);
        // Elapsed time is nonzero on any real clock, but allow zero on
        // coarse clocks; the key property is no panic and correct slot.
        assert_eq!(delta.stage_nanos(Stage::Codegen), 0);
    }

    #[test]
    fn machine_rendering_is_stable_order() {
        let snap = MetricsSnapshot::default();
        let text = snap.machine();
        assert!(text.starts_with("seeds_collected=0"));
        assert!(text.contains("leaf_moves=0"));
        assert!(text.contains("remarks_emitted=0"));
        assert!(text.ends_with("jit_fallbacks=0"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MetricsSnapshot::default();
        let before = MetricsSnapshot::current();
        bump(Counter::SeedsCollected);
        let d = MetricsSnapshot::current().delta_since(&before);
        a.merge(&d);
        a.merge(&d);
        assert_eq!(a.get(Counter::SeedsCollected), 2);
    }
}
