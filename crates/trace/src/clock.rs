//! Injectable monotonic clock shared by every timing site in the trace
//! layer (spans, stage timers, profiler spans).
//!
//! Two modes:
//!
//! - **Real** (default): nanoseconds since a process-wide [`Instant`]
//!   anchor. Monotonic, cheap (one `Instant::elapsed`), and what every
//!   production binary uses.
//! - **Virtual**: a global atomic counter that advances by a fixed
//!   [`VIRTUAL_TICK_NS`] on every read. Successive reads are strictly
//!   increasing and fully deterministic, which makes profiler and span
//!   golden tests byte-stable — including under
//!   [`RecordCapture`](crate::RecordCapture) replay, where the recorded
//!   timestamps travel with the records.
//!
//! The virtual clock is process-global; tests that enable it must not run
//! concurrently with tests asserting on timed output (keep them in their
//! own integration-test binary, or serialize on a lock).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// How far the virtual clock advances per read, in nanoseconds. One
/// microsecond keeps virtual timestamps integral after the ns→µs
/// conversions in the exporters.
pub const VIRTUAL_TICK_NS: u64 = 1_000;

static VIRTUAL: AtomicBool = AtomicBool::new(false);
static VIRTUAL_NOW: AtomicU64 = AtomicU64::new(0);

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Current monotonic time in nanoseconds. In virtual mode every call
/// advances the clock by [`VIRTUAL_TICK_NS`], so two consecutive reads
/// never return the same value.
#[inline]
pub fn now_ns() -> u64 {
    if VIRTUAL.load(Ordering::Relaxed) {
        VIRTUAL_NOW.fetch_add(VIRTUAL_TICK_NS, Ordering::SeqCst) + VIRTUAL_TICK_NS
    } else {
        anchor().elapsed().as_nanos() as u64
    }
}

/// Switch between the real clock (`false`) and the deterministic virtual
/// clock (`true`). Entering virtual mode resets the virtual counter to
/// zero so every test starts from the same origin.
pub fn set_virtual(enabled: bool) {
    VIRTUAL_NOW.store(0, Ordering::SeqCst);
    VIRTUAL.store(enabled, Ordering::SeqCst);
}

/// Is the virtual clock active?
pub fn is_virtual() -> bool {
    VIRTUAL.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
