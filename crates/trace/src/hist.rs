//! A hand-rolled, mergeable, log-bucketed latency histogram (HDR-style)
//! for service telemetry: atomic buckets, no locks on the record path,
//! bounded-error quantiles.
//!
//! # Bucket layout
//!
//! Values are nanoseconds (any `u64` works). The first
//! [`SUB_BUCKETS`] buckets are unit-width (values `0..16` are exact);
//! above that, each power-of-two range is split into [`SUB_BUCKETS`]
//! linear sub-buckets, so the bucket holding value `v` is never wider
//! than `v / 16`. That bounds the relative quantile error at
//! `1/SUB_BUCKETS` (6.25%) while keeping the whole table at
//! [`NUM_BUCKETS`] (976) buckets — small enough to hold one histogram
//! per request stage without caring.
//!
//! # Concurrency
//!
//! [`Histogram::record`] is a handful of relaxed atomic RMWs — no locks,
//! no allocation — so it is safe on the hottest server paths.
//! [`Histogram::snapshot`] reads the buckets without stopping writers;
//! a snapshot taken during concurrent recording is a consistent-enough
//! point-in-time view (each bucket individually exact, totals re-derived
//! from the buckets).
//!
//! # Snapshots are a commutative monoid
//!
//! [`HistSnapshot::merge`] adds bucket-wise and is associative and
//! commutative (property-tested in this module), so per-shard histograms
//! can be combined in any grouping. [`HistSnapshot::delta`] subtracts an
//! earlier snapshot from a later one of the *same* histogram, which is
//! how the load generator turns lifetime server counters into per-phase
//! latency distributions.
//!
//! The exact nearest-rank [`percentile`] lives here too — next to the
//! approximation it bounds — and is re-exported by
//! `snslp_bench::servebench` for the client-side latency series.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two range; also the number of exact
/// unit-width buckets at the bottom of the table.
pub const SUB_BUCKETS: usize = 16;

/// Total bucket count: 16 exact buckets for `0..16`, then 16 sub-buckets
/// for each of the 60 power-of-two ranges `[2^4, 2^64)`.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + 60 * SUB_BUCKETS;

/// The bucket index holding `v`.
#[inline]
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    // v >= 16, so the leading bit position is >= 4.
    let exp = 63 - v.leading_zeros() as usize;
    let group = exp - 4;
    let sub = ((v >> group) & 0xF) as usize;
    SUB_BUCKETS + group * SUB_BUCKETS + sub
}

/// The smallest value filed into bucket `idx`.
#[inline]
#[must_use]
pub fn bucket_lo(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let group = (idx - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = ((idx - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << group
}

/// The width of bucket `idx`: every value in the bucket is in
/// `[bucket_lo(idx), bucket_lo(idx) + bucket_width(idx))`.
#[inline]
#[must_use]
pub fn bucket_width(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        1
    } else {
        1u64 << ((idx - SUB_BUCKETS) / SUB_BUCKETS)
    }
}

/// A concurrent log-bucketed histogram. All methods are lock-free; see
/// the module docs for the bucket layout and error bound.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Files one observation. Relaxed atomic RMWs only — safe on the
    /// record path of a loaded server.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the whole distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, immutable copy of a [`Histogram`]: the unit that is merged
/// across shards, subtracted across time, serialized into the
/// `snslpd-telemetry/v1` snapshot, and queried for quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Dense per-bucket counts, `NUM_BUCKETS` long.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot::empty()
    }
}

impl HistSnapshot {
    /// An all-zero snapshot (the merge identity).
    #[must_use]
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Nearest-rank quantile, `p` in `[0, 100]`, returned as the lower
    /// bound of the bucket holding the rank'th observation. The exact
    /// nearest-rank value lies in the same bucket, so the result is
    /// never above it and never more than one bucket width below it
    /// (relative error at most `1/SUB_BUCKETS`). Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_lo(idx);
            }
        }
        self.max
    }

    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds another snapshot into this one, bucket-wise. Associative and
    /// commutative, so shard histograms merge in any grouping.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        self.min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// The distribution recorded between `earlier` and `self` (two
    /// snapshots of the *same* histogram, `self` taken later).
    /// Bucket-wise saturating subtraction; `min`/`max` are re-derived
    /// from the surviving buckets, so they are bucket-rounded rather
    /// than exact — fine for the phase summaries this feeds.
    #[must_use]
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let count = self.count.saturating_sub(earlier.count);
        let first = buckets.iter().position(|&c| c > 0);
        let last = buckets.iter().rposition(|&c| c > 0);
        HistSnapshot {
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: first.map_or(0, bucket_lo),
            max: last.map_or(0, |i| bucket_lo(i) + bucket_width(i) - 1),
            buckets,
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted series. `p` in
/// `[0, 100]`. Returns 0 for an empty series. This is the *exact*
/// counterpart of [`HistSnapshot::quantile`] — the property tests below
/// hold the approximation to within one bucket width of this function.
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — the same tiny deterministic PRNG the fuzz crate
    /// seeds itself with; enough randomness for property tests without
    /// any dependency.
    struct SplitMix(u64);

    impl SplitMix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A value whose magnitude spans the full latency range (ns to
        /// minutes), so every bucket group gets exercised.
        fn latency(&mut self) -> u64 {
            let shift = self.next() % 40;
            self.next() % (1u64 << (shift + 4))
        }
    }

    #[test]
    fn bucket_geometry_is_consistent() {
        // Every index maps back into itself, lo is the smallest member,
        // and widths bound the relative error at 1/SUB_BUCKETS.
        for idx in 0..NUM_BUCKETS {
            let lo = bucket_lo(idx);
            let w = bucket_width(idx);
            assert_eq!(bucket_index(lo), idx, "lo of bucket {idx}");
            if w > 1 {
                assert_eq!(bucket_index(lo + (w - 1)), idx, "hi of bucket {idx}");
            }
            if lo >= SUB_BUCKETS as u64 {
                assert!(w * SUB_BUCKETS as u64 <= lo, "width bound at {idx}");
            }
        }
        // Adjacent buckets tile the line with no gaps.
        for idx in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_lo(idx) + bucket_width(idx), bucket_lo(idx + 1));
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_exact_percentiles_within_one_bucket() {
        // Property: for random value sets of many shapes, the histogram
        // quantile equals the lower bound of the bucket holding the
        // exact nearest-rank sample — i.e. never above the exact value
        // and less than one bucket width below it.
        let mut rng = SplitMix(0x7E1E_AB1E);
        for case in 0..50 {
            let n = 1 + (rng.next() % 400) as usize;
            let hist = Histogram::new();
            let mut values: Vec<u64> = (0..n).map(|_| rng.latency()).collect();
            for &v in &values {
                hist.record(v);
            }
            values.sort_unstable();
            let sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
            let snap = hist.snapshot();
            assert_eq!(snap.count, n as u64);
            assert_eq!(snap.min, values[0]);
            assert_eq!(snap.max, *values.last().unwrap());
            for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
                let exact = percentile(&sorted, p) as u64;
                let approx = snap.quantile(p);
                let width = bucket_width(bucket_index(exact));
                assert!(
                    approx <= exact && exact - approx < width,
                    "case {case}: p{p} exact {exact} approx {approx} width {width}"
                );
            }
        }
    }

    #[test]
    fn merge_is_associative_and_commutative_over_random_shards() {
        let mut rng = SplitMix(0x5EED);
        for _ in 0..20 {
            // Random observations dealt onto random shards.
            let shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
            let all = Histogram::new();
            for _ in 0..200 {
                let v = rng.latency();
                shards[(rng.next() % 4) as usize].record(v);
                all.record(v);
            }
            let snaps: Vec<HistSnapshot> = shards.iter().map(Histogram::snapshot).collect();

            // Left fold, right fold, and a split-merge tree must agree
            // with each other and with the unsharded histogram.
            let fold = |order: &[usize]| {
                let mut acc = HistSnapshot::empty();
                for &i in order {
                    acc.merge(&snaps[i]);
                }
                acc
            };
            let left = fold(&[0, 1, 2, 3]);
            let right = fold(&[3, 2, 1, 0]);
            let mut tree_a = snaps[0].clone();
            tree_a.merge(&snaps[1]);
            let mut tree_b = snaps[2].clone();
            tree_b.merge(&snaps[3]);
            let mut tree = tree_a;
            tree.merge(&tree_b);
            assert_eq!(left, right);
            assert_eq!(left, tree);
            assert_eq!(left, all.snapshot());
        }
    }

    #[test]
    fn delta_recovers_the_recorded_window() {
        let hist = Histogram::new();
        hist.record(100);
        hist.record(2_000);
        let before = hist.snapshot();
        hist.record(100);
        hist.record(40_000);
        let after = hist.snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 40_100);
        assert_eq!(delta.buckets[bucket_index(100)], 1);
        assert_eq!(delta.buckets[bucket_index(40_000)], 1);
        // min/max are bucket-rounded.
        assert_eq!(delta.min, bucket_lo(bucket_index(100)));
        assert!(delta.max >= 40_000);
    }

    #[test]
    fn empty_and_single_value_edges() {
        let snap = HistSnapshot::empty();
        assert_eq!(snap.quantile(50.0), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);

        let hist = Histogram::new();
        hist.record(7);
        let snap = hist.snapshot();
        assert_eq!(snap.quantile(0.0), 7);
        assert_eq!(snap.quantile(100.0), 7);
        assert_eq!(snap.min, 7);
        assert_eq!(snap.max, 7);
    }
}
