//! Service-side trace vocabulary for `snslpd`.
//!
//! The compile service emits the same record stream as the batch driver,
//! so every span and event it produces must come from this fixed
//! vocabulary — consumers (the Perfetto exporter, `tracecheck`, log
//! grepping in CI) match on these literal names. Keep the constants here
//! rather than scattering string literals through `crates/serve`.

/// Span covering one accepted connection, from accept to hangup.
pub const SPAN_CONNECTION: &str = "serve.connection";

/// Span covering one request: read, compile (or cache hit), reply.
pub const SPAN_REQUEST: &str = "serve.request";

/// Span covering one shard batch: drain queue, group, run the driver.
pub const SPAN_BATCH: &str = "serve.batch";

/// Event: a request was refused with a `busy` reply (in-flight limit).
pub const EVENT_BUSY: &str = "serve.busy";

/// Event: a whole request was answered from the module-text memo.
pub const EVENT_MEMO_HIT: &str = "serve.memo_hit";

/// Event: an invalid environment override was ignored (e.g. a
/// non-numeric `SNSLP_THREADS`); carries the variable and raw value.
pub const EVENT_ENV_IGNORED: &str = "env.ignored";

/// Access-log record: exactly one per request the server answered, with
/// the per-stage nanosecond breakdown (`parse_ns`, `queue_ns`,
/// `compile_ns`, `render_ns`, `write_ns`, `total_ns`), the request `id`,
/// `op`, reply `status`, `cache` outcome, and `bytes_in`/`bytes_out`.
/// With the JSON sink this is the NDJSON access log; the strict
/// validator lives in `snslp_bench::tracecheck::validate_access_log`.
pub const EVENT_ACCESS: &str = "serve.access";
