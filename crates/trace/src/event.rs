//! Point events and RAII spans.
//!
//! Use the [`trace_event!`](crate::trace_event) macro rather than calling
//! [`emit_event`] directly: the macro checks the facet *before* evaluating
//! any field expressions, so a disabled trace costs one relaxed atomic
//! load and nothing else — no allocation, no formatting.

use crate::clock;
use crate::sink::{Record, RecordKind, Value};
use crate::{enabled, Facet};

/// Emit a point event. Prefer [`trace_event!`](crate::trace_event); this
/// is the macro's runtime half and assumes the facet check already passed.
pub fn emit_event(name: &str, fields: &[(&'static str, Value)]) {
    let mut rec = Record::new(RecordKind::Event, name);
    rec.fields.extend_from_slice(fields);
    crate::emit_record(rec);
}

/// RAII span: records `span-begin` on creation and `span-end` (with
/// `elapsed_us`) on drop. Inert — no allocation, no clock read — when the
/// `events` facet is disabled at creation time.
#[must_use = "a span records its end on drop"]
pub struct Span {
    /// `Some` only while the span is live *and* tracing was enabled at
    /// entry; holds the name and entry timestamp (nanoseconds on the
    /// [`clock`] timeline, so the virtual clock makes span output
    /// deterministic).
    live: Option<(String, u64)>,
}

impl Span {
    pub fn enter(name: &str) -> Span {
        if !enabled(Facet::Events) {
            return Span { live: None };
        }
        crate::emit_record(Record::new(RecordKind::SpanBegin, name));
        Span {
            live: Some((name.to_string(), clock::now_ns())),
        }
    }

    /// Attach context to a live span as a point event (spans themselves
    /// stay field-free so begin/end pairs are trivially matchable).
    pub fn note(&self, key: &'static str, value: impl Into<Value>) {
        if let Some((name, _)) = &self.live {
            emit_event(name, &[(key, value.into())]);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start_ns)) = self.live.take() {
            let elapsed_us = clock::now_ns().saturating_sub(start_ns) / 1_000;
            crate::emit_record(
                Record::new(RecordKind::SpanEnd, name).with("elapsed_us", elapsed_us),
            );
        }
    }
}

/// Emit a structured point event if the `events` facet is enabled.
///
/// ```ignore
/// trace_event!("seeds.collect", "block" => block_name, "count" => seeds.len());
/// ```
///
/// Field expressions are not evaluated when tracing is disabled.
#[macro_export]
macro_rules! trace_event {
    ($name:expr $(, $key:literal => $val:expr)* $(,)?) => {
        if $crate::enabled($crate::Facet::Events) {
            $crate::emit_event(
                $name,
                &[$(($key, $crate::Value::from($val))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_is_inert_when_disabled() {
        // Tests run with facets defaulted to off.
        let span = Span::enter("test.span");
        assert!(span.live.is_none());
        span.note("k", 1u64);
        drop(span);
    }

    #[test]
    fn trace_event_skips_field_evaluation_when_disabled() {
        let mut evaluated = false;
        trace_event!("test.event", "v" => { evaluated = true; 1u64 });
        assert!(!evaluated);
    }
}
