//! Trace sinks: where structured records go once a facet is enabled.
//!
//! A [`Record`] is a flat, schema-less bag of key/value fields tagged with
//! a [`RecordKind`]. The default [`TextSink`] renders one human-readable
//! line per record to stderr; [`JsonSink`] renders one JSON object per
//! line (machine consumption); [`BufferSink`] accumulates rendered lines
//! in memory for tests and for the `graphdump` tool.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

/// A single trace field value. Deliberately small: everything the
/// pipeline reports fits in these five shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    I64(i64),
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    /// Render without quoting (text sink).
    fn render_bare(&self, out: &mut String) {
        match self {
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(v) => {
                if v.contains(' ') {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str(v);
                }
            }
        }
    }

    /// Render as a JSON value.
    fn render_json(&self, out: &mut String) {
        match self {
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(v) => json_string(v, out),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

/// What kind of record this is; sinks may route or prefix on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A point event inside a pass.
    Event,
    /// Start of a named span.
    SpanBegin,
    /// End of a named span (carries `elapsed_us`).
    SpanEnd,
    /// An optimization remark (one per seed bundle).
    Remark,
    /// A metrics-registry line.
    Metric,
    /// A dumped artifact (e.g. a DOT graph written to disk).
    Artifact,
}

impl RecordKind {
    pub fn label(self) -> &'static str {
        match self {
            RecordKind::Event => "event",
            RecordKind::SpanBegin => "span-begin",
            RecordKind::SpanEnd => "span-end",
            RecordKind::Remark => "remark",
            RecordKind::Metric => "metric",
            RecordKind::Artifact => "artifact",
        }
    }
}

/// One structured trace record.
#[derive(Debug, Clone)]
pub struct Record {
    pub kind: RecordKind,
    /// Short dotted name, e.g. `seeds.collect` or `pass.run_slp`.
    pub name: String,
    pub fields: Vec<(&'static str, Value)>,
}

impl Record {
    pub fn new(kind: RecordKind, name: impl Into<String>) -> Self {
        Record {
            kind,
            name: name.into(),
            fields: Vec::new(),
        }
    }

    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// The canonical single-line text rendering:
    /// `[snslp] <kind> <name> k=v k=v ...`
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(out, "[snslp] {} {}", self.kind.label(), self.name);
        for (key, value) in &self.fields {
            out.push(' ');
            out.push_str(key);
            out.push('=');
            value.render_bare(&mut out);
        }
        out
    }

    /// One JSON object per record, single line.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"kind\":");
        json_string(self.kind.label(), &mut out);
        out.push_str(",\"name\":");
        json_string(&self.name, &mut out);
        for (key, value) in &self.fields {
            out.push(',');
            json_string(key, &mut out);
            out.push(':');
            value.render_json(&mut out);
        }
        out.push('}');
        out
    }
}

fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Destination for trace records. Implementations must be cheap per-record;
/// the facet check has already happened by the time `record` is called.
pub trait Sink: Send {
    fn record(&mut self, rec: &Record);
    fn flush(&mut self) {}
}

/// Human-readable lines to stderr (the default sink).
#[derive(Debug, Default)]
pub struct TextSink;

impl Sink for TextSink {
    fn record(&mut self, rec: &Record) {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{}", rec.render_text());
    }
}

/// One JSON object per line to stderr (`SNSLP_TRACE=...,json`).
#[derive(Debug, Default)]
pub struct JsonSink;

impl Sink for JsonSink {
    fn record(&mut self, rec: &Record) {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{}", rec.render_json());
    }
}

/// Accumulates rendered lines in a shared buffer. Used by tests (via
/// [`crate::capture`] / [`crate::capture_json`]) and by tools that
/// post-process the stream. Renders text by default; `new_json` renders
/// one JSON object per line instead.
#[derive(Debug, Clone, Default)]
pub struct BufferSink {
    lines: Arc<Mutex<Vec<String>>>,
    json: bool,
}

impl BufferSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer sink whose lines are JSON objects (NDJSON).
    pub fn new_json() -> Self {
        BufferSink {
            json: true,
            ..Self::default()
        }
    }

    /// Handle to the shared line buffer; clone before installing the sink.
    pub fn lines(&self) -> Arc<Mutex<Vec<String>>> {
        Arc::clone(&self.lines)
    }

    pub fn take(&self) -> Vec<String> {
        std::mem::take(&mut self.lines.lock().unwrap())
    }
}

impl Sink for BufferSink {
    fn record(&mut self, rec: &Record) {
        let line = if self.json {
            rec.render_json()
        } else {
            rec.render_text()
        };
        self.lines.lock().unwrap().push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_is_stable() {
        let rec = Record::new(RecordKind::Event, "seeds.collect")
            .with("block", "entry")
            .with("count", 3usize)
            .with("profitable", true);
        assert_eq!(
            rec.render_text(),
            "[snslp] event seeds.collect block=entry count=3 profitable=true"
        );
    }

    #[test]
    fn text_rendering_quotes_spaces() {
        let rec = Record::new(RecordKind::Remark, "r").with("detail", "a b");
        assert_eq!(rec.render_text(), "[snslp] remark r detail=\"a b\"");
    }

    #[test]
    fn json_rendering_escapes() {
        let rec = Record::new(RecordKind::Event, "e")
            .with("s", "a\"b\\c\nd")
            .with("n", -4i64);
        assert_eq!(
            rec.render_json(),
            "{\"kind\":\"event\",\"name\":\"e\",\"s\":\"a\\\"b\\\\c\\nd\",\"n\":-4}"
        );
    }

    #[test]
    fn buffer_sink_accumulates() {
        let buf = BufferSink::new();
        let mut sink = buf.clone();
        sink.record(&Record::new(RecordKind::Metric, "m").with("v", 1u64));
        sink.record(&Record::new(RecordKind::Metric, "m").with("v", 2u64));
        let lines = buf.take();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("v=1"));
        assert!(buf.take().is_empty());
    }
}
