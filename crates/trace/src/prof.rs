//! `snslp-prof`: a hierarchical self-profiler in the spirit of clang's
//! `-ftime-trace`.
//!
//! Nested [`ProfSpan`]s record `(name, start, duration, depth)` into
//! per-thread buffers; each thread's buffer is flushed into a global
//! profile store as a named *track* (the parallel module driver flushes
//! one track per worker). [`take_profile`] drains the store into a
//! [`Profile`], which exports as
//!
//! - Chrome Trace Event / Perfetto JSON ([`Profile::to_chrome_json`]) —
//!   load in `chrome://tracing` or <https://ui.perfetto.dev>;
//! - folded-stack text ([`Profile::to_folded`]) — pipe to
//!   `flamegraph.pl`;
//! - an LLVM-`-time-passes`-style terminal table
//!   ([`Profile::time_passes`]).
//!
//! Collection is gated on the [`Prof`](crate::Facet::Prof) facet and is
//! zero-cost when disabled: one relaxed atomic load per span site, no
//! clock read, no allocation (proven by the counting-allocator test in
//! `tests/zero_cost.rs`). Timestamps come from [`crate::clock`], so
//! golden tests switch to the deterministic virtual clock.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::clock;
use crate::{enabled, Facet};

/// What a profile event records.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfEventKind {
    /// A timed span (`ph:"X"` in Chrome trace terms).
    Span,
    /// A point sample of a named counter (`ph:"C"`).
    Counter(f64),
}

/// One recorded profiler event.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfEvent {
    /// Static span/counter name, e.g. `graph.build`.
    pub name: &'static str,
    /// Optional dynamic context (e.g. the function being compiled).
    /// Only materialized while profiling is enabled.
    pub label: Option<Box<str>>,
    /// Start timestamp, nanoseconds on the [`crate::clock`] timeline.
    pub start_ns: u64,
    /// Duration in nanoseconds (zero for counter samples).
    pub dur_ns: u64,
    /// Nesting depth at entry (0 = top level on its thread).
    pub depth: u32,
    /// Span or counter sample.
    pub kind: ProfEventKind,
}

struct ThreadBuf {
    events: Vec<ProfEvent>,
    depth: u32,
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = const {
        RefCell::new(ThreadBuf { events: Vec::new(), depth: 0 })
    };
}

/// One named event track of a profile (usually one per thread).
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// Track label, e.g. `main` or `worker-2`.
    pub label: String,
    /// Events in recording (span-end) order.
    pub events: Vec<ProfEvent>,
}

/// Global store of flushed tracks, drained by [`take_profile`].
static TRACKS: Mutex<Vec<Track>> = Mutex::new(Vec::new());

/// Is profiling enabled? One relaxed atomic load.
#[inline]
pub fn profiling() -> bool {
    enabled(Facet::Prof)
}

/// RAII profiler span. Inert (no clock read, no allocation) when the
/// `prof` facet is disabled at entry.
#[must_use = "a profiler span records its duration on drop"]
pub struct ProfSpan {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    name: &'static str,
    label: Option<Box<str>>,
    start_ns: u64,
    depth: u32,
}

impl ProfSpan {
    /// Enter a span.
    #[inline]
    pub fn enter(name: &'static str) -> ProfSpan {
        if !profiling() {
            return ProfSpan { live: None };
        }
        Self::enter_live(name, None)
    }

    /// Enter a span with a lazily-built label; the closure only runs when
    /// profiling is enabled.
    #[inline]
    pub fn enter_with<F: FnOnce() -> String>(name: &'static str, label: F) -> ProfSpan {
        if !profiling() {
            return ProfSpan { live: None };
        }
        Self::enter_live(name, Some(label().into_boxed_str()))
    }

    fn enter_live(name: &'static str, label: Option<Box<str>>) -> ProfSpan {
        let depth = BUF.with(|b| {
            let mut b = b.borrow_mut();
            let d = b.depth;
            b.depth += 1;
            d
        });
        ProfSpan {
            live: Some(LiveSpan {
                name,
                label,
                start_ns: clock::now_ns(),
                depth,
            }),
        }
    }
}

impl Drop for ProfSpan {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let end = clock::now_ns();
            BUF.with(|b| {
                let mut b = b.borrow_mut();
                b.depth = b.depth.saturating_sub(1);
                b.events.push(ProfEvent {
                    name: live.name,
                    label: live.label,
                    start_ns: live.start_ns,
                    dur_ns: end.saturating_sub(live.start_ns),
                    depth: live.depth,
                    kind: ProfEventKind::Span,
                });
            });
        }
    }
}

/// Record a point sample of a named counter (rendered as a Perfetto
/// counter track). No-op when profiling is disabled.
#[inline]
pub fn counter(name: &'static str, value: f64) {
    if !profiling() {
        return;
    }
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        let depth = b.depth;
        b.events.push(ProfEvent {
            name,
            label: None,
            start_ns: clock::now_ns(),
            dur_ns: 0,
            depth,
            kind: ProfEventKind::Counter(value),
        });
    });
}

/// Move this thread's buffered events into the global store under
/// `label`. Repeated flushes to the same label append (the worker loop of
/// the parallel driver flushes once per worker at exit). While profiling
/// is enabled an empty buffer still materializes its (empty) track — so a
/// profile shows every parallel worker, including starved ones; with
/// profiling disabled an empty flush is a no-op.
pub fn flush_thread(label: &str) {
    let events = BUF.with(|b| std::mem::take(&mut b.borrow_mut().events));
    if events.is_empty() && !profiling() {
        return;
    }
    let mut tracks = TRACKS.lock().unwrap_or_else(|e| e.into_inner());
    match tracks.iter_mut().find(|t| t.label == label) {
        Some(t) => t.events.extend(events),
        None => tracks.push(Track {
            label: label.to_string(),
            events,
        }),
    }
}

/// Flush the calling thread (as `main`) and drain every flushed track
/// into a [`Profile`]. Tracks come back sorted by label so output is
/// deterministic regardless of which worker finished first.
pub fn take_profile() -> Profile {
    flush_thread("main");
    let mut tracks = std::mem::take(&mut *TRACKS.lock().unwrap_or_else(|e| e.into_inner()));
    tracks.sort_by(|a, b| a.label.cmp(&b.label));
    Profile { tracks }
}

/// Discard this thread's buffer and every flushed track. Test support.
pub fn clear() {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        b.events.clear();
        b.depth = 0;
    });
    TRACKS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// A drained profile: one or more named tracks of hierarchical events.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Tracks sorted by label.
    pub tracks: Vec<Track>,
}

/// Per-name aggregate used by the `--time-passes` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanTotals {
    /// Number of span instances.
    pub count: u64,
    /// Inclusive wall time, nanoseconds.
    pub total_ns: u64,
    /// Self time (inclusive minus direct children), nanoseconds.
    pub self_ns: u64,
}

impl Profile {
    /// No events at all?
    pub fn is_empty(&self) -> bool {
        self.tracks.iter().all(|t| t.events.is_empty())
    }

    /// Distinct span names across every track, sorted.
    pub fn span_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == ProfEventKind::Span)
            .map(|e| e.name)
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Spans of one track sorted so parents precede their children:
    /// by start time, ties broken longest-duration-first.
    fn sorted_spans(track: &Track) -> Vec<&ProfEvent> {
        let mut spans: Vec<&ProfEvent> = track
            .events
            .iter()
            .filter(|e| e.kind == ProfEventKind::Span)
            .collect();
        spans.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(b.dur_ns.cmp(&a.dur_ns))
                .then(a.depth.cmp(&b.depth))
        });
        spans
    }

    /// Chrome Trace Event / Perfetto JSON: one `thread_name` metadata
    /// record plus one complete (`ph:"X"`) event per span per track, and
    /// one counter (`ph:"C"`) event per sample. Timestamps are
    /// microseconds, as the format requires.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&ev);
        };
        for (tid, track) in self.tracks.iter().enumerate() {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":{}}}}}",
                    json_str(&track.label)
                ),
            );
            for ev in Self::sorted_spans(track) {
                let mut rec = format!(
                    "{{\"name\":{},\"cat\":\"snslp\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":1,\"tid\":{tid}",
                    json_str(ev.name),
                    us(ev.start_ns),
                    us(ev.dur_ns),
                );
                if let Some(label) = &ev.label {
                    let _ = write!(rec, ",\"args\":{{\"label\":{}}}", json_str(label));
                }
                rec.push('}');
                push(&mut out, &mut first, rec);
            }
            let mut counters: Vec<&ProfEvent> = track
                .events
                .iter()
                .filter(|e| matches!(e.kind, ProfEventKind::Counter(_)))
                .collect();
            counters.sort_by_key(|e| e.start_ns);
            for ev in counters {
                let ProfEventKind::Counter(v) = ev.kind else {
                    unreachable!()
                };
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{tid},\
                         \"args\":{{\"value\":{}}}}}",
                        json_str(ev.name),
                        us(ev.start_ns),
                        json_num(v),
                    ),
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Folded-stack text (`track;parent;child self_ns` per line), the
    /// input format of Brendan Gregg's `flamegraph.pl`. Values are
    /// nanoseconds of *self* time; identical stacks are merged. Lines are
    /// sorted for deterministic output.
    pub fn to_folded(&self) -> String {
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for track in &self.tracks {
            // Reconstruct nesting by interval containment over the
            // parent-before-child sort. Each stack entry is
            // (name, end_ns, direct-children nanoseconds).
            let mut stack: Vec<(&str, u64, u64, u64)> = Vec::new(); // name, end, dur, child_ns
            let close = |stack: &mut Vec<(&str, u64, u64, u64)>,
                         folded: &mut BTreeMap<String, u64>,
                         label: &str,
                         upto: u64| {
                while let Some(&(_, end, _, _)) = stack.last() {
                    if end > upto {
                        break;
                    }
                    let (name, _, dur, child_ns) = stack.pop().unwrap();
                    if let Some(top) = stack.last_mut() {
                        top.3 += dur;
                    }
                    let mut path = String::with_capacity(64);
                    path.push_str(label);
                    for (n, ..) in stack.iter() {
                        path.push(';');
                        path.push_str(n);
                    }
                    path.push(';');
                    path.push_str(name);
                    *folded.entry(path).or_insert(0) += dur.saturating_sub(child_ns);
                }
            };
            for ev in Self::sorted_spans(track) {
                close(&mut stack, &mut folded, &track.label, ev.start_ns);
                stack.push((ev.name, ev.start_ns + ev.dur_ns, ev.dur_ns, 0));
            }
            close(&mut stack, &mut folded, &track.label, u64::MAX);
        }
        let mut out = String::new();
        for (path, ns) in folded {
            let _ = writeln!(out, "{path} {ns}");
        }
        out
    }

    /// Aggregate totals per span name across every track.
    pub fn totals(&self) -> BTreeMap<&'static str, SpanTotals> {
        let mut totals: BTreeMap<&'static str, SpanTotals> = BTreeMap::new();
        for track in &self.tracks {
            let mut stack: Vec<(&'static str, u64, u64, u64)> = Vec::new();
            let close = |stack: &mut Vec<(&'static str, u64, u64, u64)>,
                         totals: &mut BTreeMap<&'static str, SpanTotals>,
                         upto: u64| {
                while let Some(&(_, end, _, _)) = stack.last() {
                    if end > upto {
                        break;
                    }
                    let (name, _, dur, child_ns) = stack.pop().unwrap();
                    if let Some(top) = stack.last_mut() {
                        top.3 += dur;
                    }
                    let entry = totals.entry(name).or_default();
                    entry.count += 1;
                    entry.total_ns += dur;
                    entry.self_ns += dur.saturating_sub(child_ns);
                }
            };
            for ev in Self::sorted_spans(track) {
                close(&mut stack, &mut totals, ev.start_ns);
                stack.push((ev.name, ev.start_ns + ev.dur_ns, ev.dur_ns, 0));
            }
            close(&mut stack, &mut totals, u64::MAX);
        }
        totals
    }

    /// The `--time-passes` terminal summary: one row per span name,
    /// sorted by total time (descending, name as tie-break).
    pub fn time_passes(&self) -> String {
        let totals = self.totals();
        let wall: u64 = totals.values().map(|t| t.self_ns).sum();
        let mut rows: Vec<(&str, SpanTotals)> = totals.into_iter().collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "===-------------------------------------------------------------===\n\
             {:>12} {:>12} {:>7}  span\n\
             ===-------------------------------------------------------------===",
            "total", "self", "count"
        );
        for (name, t) in rows {
            let _ = writeln!(
                out,
                "{:>12} {:>12} {:>7}  {name}",
                fmt_ns(t.total_ns),
                fmt_ns(t.self_ns),
                t.count
            );
        }
        let _ = writeln!(
            out,
            "{:>12} {:>12} {:>7}  (wall, sum of self)",
            fmt_ns(wall),
            "",
            ""
        );
        out
    }
}

/// Nanoseconds → microseconds for the Chrome JSON, exact when the value
/// is a whole microsecond (always true under the virtual clock).
fn us(ns: u64) -> String {
    if ns.is_multiple_of(1_000) {
        (ns / 1_000).to_string()
    } else {
        format!("{}.{:03}", ns / 1_000, ns % 1_000)
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_is_inert_when_disabled() {
        // Unit tests run with facets defaulted to off.
        let span = ProfSpan::enter("test.prof");
        assert!(span.live.is_none());
        drop(span);
        counter("test.counter", 1.0);
        BUF.with(|b| assert!(b.borrow().events.is_empty()));
    }

    #[test]
    fn enter_with_skips_label_when_disabled() {
        let mut built = false;
        let span = ProfSpan::enter_with("test.prof", || {
            built = true;
            "label".to_string()
        });
        drop(span);
        assert!(!built, "label closure must not run while disabled");
    }

    #[test]
    fn folded_subtracts_child_time() {
        let profile = Profile {
            tracks: vec![Track {
                label: "t".to_string(),
                events: vec![
                    ProfEvent {
                        name: "child",
                        label: None,
                        start_ns: 2_000,
                        dur_ns: 3_000,
                        depth: 1,
                        kind: ProfEventKind::Span,
                    },
                    ProfEvent {
                        name: "parent",
                        label: None,
                        start_ns: 1_000,
                        dur_ns: 9_000,
                        depth: 0,
                        kind: ProfEventKind::Span,
                    },
                ],
            }],
        };
        let folded = profile.to_folded();
        assert_eq!(folded, "t;parent 6000\nt;parent;child 3000\n");
        let totals = profile.totals();
        assert_eq!(totals["parent"].total_ns, 9_000);
        assert_eq!(totals["parent"].self_ns, 6_000);
        assert_eq!(totals["child"].self_ns, 3_000);
    }
}
