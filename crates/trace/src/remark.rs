//! Optimization remarks, in the spirit of LLVM's `-Rpass=...` /
//! `-Rpass-missed=...`: exactly one machine-readable record per seed
//! bundle the vectorizer considered, saying whether it was vectorized and
//! why not otherwise.
//!
//! Remarks are *returned* on the pass report (so tests can assert exact
//! streams without global sink state) and additionally emitted to the
//! trace sink when the `remarks` facet is enabled.

use std::fmt;

use crate::decision::DecisionId;
use crate::sink::{Record, RecordKind};

/// Why a seed bundle was vectorized or rejected. `code()` strings are a
/// stable machine interface — golden tests assert them verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReasonCode {
    /// Vectorized: the cost model reported a net win.
    Profitable,
    /// Rejected: the graph built but the cost model said it is not a win.
    Cost,
    /// Rejected: a lane contained an opcode the vectorizer cannot bundle.
    UnsupportedOpcode,
    /// Rejected: a may-aliasing memory access blocked a load/store bundle.
    Aliasing,
    /// Rejected: codegen could not schedule the vector graph (dependence
    /// cycle between bundles).
    SchedulingFailure,
    /// Rejected: loads/stores in the bundle are not consecutive.
    NonConsecutive,
    /// Rejected: the seed was too narrow to form a vector (width < 2).
    TooNarrow,
    /// Calibration: the cost model's predicted saving for a committed
    /// vectorized region disagrees with the dynamically achieved saving
    /// beyond the calibration ratio threshold (emitted by the dynamic
    /// profiling layer, not by the pass itself).
    CostMisprediction,
    /// The native JIT backend refused to compile a committed function and
    /// execution fell back to the interpreter (emitted by the execution
    /// layer, not by the pass itself).
    JitFallback,
}

impl ReasonCode {
    pub const ALL: [ReasonCode; 9] = [
        ReasonCode::Profitable,
        ReasonCode::Cost,
        ReasonCode::UnsupportedOpcode,
        ReasonCode::Aliasing,
        ReasonCode::SchedulingFailure,
        ReasonCode::NonConsecutive,
        ReasonCode::TooNarrow,
        ReasonCode::CostMisprediction,
        ReasonCode::JitFallback,
    ];

    /// Stable kebab-case code used in machine remark lines.
    pub fn code(self) -> &'static str {
        match self {
            ReasonCode::Profitable => "profitable",
            ReasonCode::Cost => "cost",
            ReasonCode::UnsupportedOpcode => "unsupported-opcode",
            ReasonCode::Aliasing => "aliasing",
            ReasonCode::SchedulingFailure => "scheduling-failure",
            ReasonCode::NonConsecutive => "non-consecutive",
            ReasonCode::TooNarrow => "too-narrow",
            ReasonCode::CostMisprediction => "cost-misprediction",
            ReasonCode::JitFallback => "jit-fallback",
        }
    }

    /// Human phrasing used by [`Remark::human`].
    fn phrase(self) -> &'static str {
        match self {
            ReasonCode::Profitable => "vectorized",
            ReasonCode::Cost => "not profitable",
            ReasonCode::UnsupportedOpcode => "unsupported opcode in bundle",
            ReasonCode::Aliasing => "blocked by may-aliasing access",
            ReasonCode::SchedulingFailure => "vector schedule has a dependence cycle",
            ReasonCode::NonConsecutive => "non-consecutive memory accesses",
            ReasonCode::TooNarrow => "seed too narrow",
            ReasonCode::CostMisprediction => "predicted and achieved savings disagree",
            ReasonCode::JitFallback => "native backend fell back to the interpreter",
        }
    }
}

impl fmt::Display for ReasonCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One remark: the outcome for one seed bundle in one function.
#[derive(Debug, Clone, PartialEq)]
pub struct Remark {
    /// Pass label, e.g. `slp`, `lslp`, `snslp`.
    pub pass: String,
    /// Function name, `@`-prefixed.
    pub function: String,
    /// Basic-block label the seed lives in.
    pub block: String,
    /// Site of the seed: the printed name of the first seed value
    /// (e.g. `%t12`), or a reduction root.
    pub site: String,
    /// Stable instruction index of the seed root — unlike `site`, this
    /// survives unrelated value renumbering.
    pub inst: u32,
    /// Anchor joining this remark to the graph dump, profiler span and
    /// report cost entry for the same decision.
    pub decision: DecisionId,
    /// Kind of seed: `store` or `reduction`.
    pub seed_kind: String,
    /// Lanes in the seed bundle.
    pub width: usize,
    /// Whether the bundle was vectorized.
    pub vectorized: bool,
    pub reason: ReasonCode,
    /// Saved cycles as reported by the cost model (negative = profit),
    /// when a graph was built; `None` when the seed never produced a
    /// costable graph.
    pub cost: Option<i64>,
    /// Free-form extra context, e.g. `gathers=2` or the rejecting opcode.
    pub detail: String,
}

impl Remark {
    /// The stable machine rendering asserted by golden tests:
    /// one line, fixed field order, no timing.
    pub fn machine(&self) -> String {
        let mut out = format!(
            "remark pass={} fn={} block={} site={} inst={} seed={} width={} action={} \
             reason={} decision={}",
            self.pass,
            self.function,
            self.block,
            self.site,
            self.inst,
            self.seed_kind,
            self.width,
            if self.vectorized {
                "vectorized"
            } else {
                "missed"
            },
            self.reason.code(),
            self.decision.render(),
        );
        if let Some(cost) = self.cost {
            out.push_str(&format!(" cost={cost}"));
        }
        if !self.detail.is_empty() {
            out.push_str(&format!(" detail={}", self.detail));
        }
        out
    }

    /// A prose rendering for humans, in the spirit of clang's
    /// `-Rpass` console output.
    pub fn human(&self) -> String {
        let mut out = format!(
            "{}/{}: {} seed at {} (width {}): {}",
            self.function,
            self.block,
            self.seed_kind,
            self.site,
            self.width,
            self.reason.phrase(),
        );
        if self.vectorized {
            out.push_str(&format!(" by {}", self.pass));
        }
        if let Some(cost) = self.cost {
            out.push_str(&format!(" (cost {cost})"));
        }
        if !self.detail.is_empty() {
            out.push_str(&format!(" [{}]", self.detail));
        }
        out
    }

    /// Emit to the global sink if the `remarks` facet is enabled.
    pub fn emit(&self) {
        if !crate::enabled(crate::Facet::Remarks) {
            return;
        }
        let mut rec = Record::new(RecordKind::Remark, "slp.remark")
            .with("pass", self.pass.as_str())
            .with("fn", self.function.as_str())
            .with("block", self.block.as_str())
            .with("site", self.site.as_str())
            .with("inst", u64::from(self.inst))
            .with("seed", self.seed_kind.as_str())
            .with("width", self.width)
            .with(
                "action",
                if self.vectorized {
                    "vectorized"
                } else {
                    "missed"
                },
            )
            .with("reason", self.reason.code())
            .with("decision", self.decision.render());
        if let Some(cost) = self.cost {
            rec = rec.with("cost", cost);
        }
        if !self.detail.is_empty() {
            rec = rec.with("detail", self.detail.as_str());
        }
        crate::emit_record(rec);
    }
}

impl fmt::Display for Remark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.human())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Remark {
        Remark {
            pass: "snslp".to_string(),
            function: "@fig3".to_string(),
            block: "entry".to_string(),
            site: "%t9".to_string(),
            inst: 9,
            decision: DecisionId::new("fig3", "entry", 0, 9),
            seed_kind: "store".to_string(),
            width: 2,
            vectorized: true,
            reason: ReasonCode::Profitable,
            cost: Some(-6),
            detail: String::new(),
        }
    }

    #[test]
    fn machine_format_is_stable() {
        assert_eq!(
            sample().machine(),
            "remark pass=snslp fn=@fig3 block=entry site=%t9 inst=9 seed=store \
             width=2 action=vectorized reason=profitable decision=@fig3/entry/s0#i9 cost=-6"
        );
    }

    #[test]
    fn human_format_mentions_outcome() {
        let text = sample().human();
        assert!(text.contains("@fig3/entry"));
        assert!(text.contains("vectorized by snslp"));
        assert!(text.contains("(cost -6)"));
    }

    #[test]
    fn missed_remark_carries_reason_code() {
        let mut r = sample();
        r.vectorized = false;
        r.reason = ReasonCode::Aliasing;
        r.cost = None;
        r.detail = "store %t4 may alias".to_string();
        let line = r.machine();
        assert!(line.contains("action=missed"));
        assert!(line.contains("reason=aliasing"));
        assert!(line.contains("detail=store %t4 may alias"));
        assert!(!line.contains("cost="));
    }

    #[test]
    fn reason_codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for code in ReasonCode::ALL {
            assert!(seen.insert(code.code()), "duplicate code {}", code.code());
        }
    }
}
