//! Stable decision anchors.
//!
//! Every pack/supernode/gather/bail decision the vectorizer makes gets a
//! [`DecisionId`] minted at the seed site. The same id is stamped onto the
//! remark, the profiler span covering the decision, the DOT dump of the
//! graph it produced and the per-graph cost entry on the function report,
//! so downstream tooling (`snslp-report`) can join the five observability
//! layers without fuzzy text matching.
//!
//! The id is built only from stable coordinates — function name, block
//! label, the per-function seed ordinal and the seed instruction's stable
//! index — so golden streams survive unrelated value renumbering and the
//! id round-trips through text artifacts via [`DecisionId::parse`].

use std::fmt;

/// Anchor identifying one vectorization decision: one seed bundle
/// considered in one function.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DecisionId {
    /// Function name, without the `@` sigil.
    pub function: String,
    /// Basic-block label the seed lives in.
    pub block: String,
    /// Seed ordinal within the function, in pass consideration order.
    pub ordinal: u32,
    /// Stable instruction index of the seed root (survives renaming).
    pub inst: u32,
}

impl DecisionId {
    pub fn new(function: &str, block: &str, ordinal: u32, inst: u32) -> Self {
        DecisionId {
            function: function.to_string(),
            block: block.to_string(),
            ordinal,
            inst,
        }
    }

    /// The canonical text form: `@fn/block/s<ordinal>#i<inst>`. Asserted
    /// verbatim by golden streams; parsed back by the report reader.
    pub fn render(&self) -> String {
        format!(
            "@{}/{}/s{}#i{}",
            self.function, self.block, self.ordinal, self.inst
        )
    }

    /// Parse the canonical text form produced by [`DecisionId::render`].
    pub fn parse(text: &str) -> Result<DecisionId, String> {
        let err = || format!("malformed decision id `{text}` (expected `@fn/block/sN#iM`)");
        let rest = text.strip_prefix('@').ok_or_else(err)?;
        // Split from the right: the suffix and block label never contain
        // `/`, so the last two segments are unambiguous even if the
        // function name ever does.
        let (head, tail) = rest.rsplit_once('/').ok_or_else(err)?;
        let (function, block) = head.rsplit_once('/').ok_or_else(err)?;
        if function.is_empty() || block.is_empty() {
            return Err(err());
        }
        let tail = tail.strip_prefix('s').ok_or_else(err)?;
        let (ordinal, inst) = tail.split_once("#i").ok_or_else(err)?;
        let ordinal = ordinal.parse::<u32>().map_err(|_| err())?;
        let inst = inst.parse::<u32>().map_err(|_| err())?;
        Ok(DecisionId::new(function, block, ordinal, inst))
    }
}

impl fmt::Display for DecisionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_canonically() {
        let id = DecisionId::new("fig3", "entry", 0, 18);
        assert_eq!(id.render(), "@fig3/entry/s0#i18");
        assert_eq!(id.to_string(), id.render());
    }

    #[test]
    fn parse_round_trips() {
        for id in [
            DecisionId::new("fig3", "entry", 0, 18),
            DecisionId::new("povray_shade", "loop.body", 7, 0),
            DecisionId::new("a", "b", u32::MAX, u32::MAX),
        ] {
            assert_eq!(DecisionId::parse(&id.render()).as_ref(), Ok(&id));
        }
    }

    #[test]
    fn parse_rejects_malformed_ids() {
        for bad in [
            "",
            "fig3/entry/s0#i1",
            "@fig3",
            "@fig3/entry",
            "@fig3/entry/0#i1",
            "@fig3/entry/s0",
            "@fig3/entry/s0#ix",
            "@fig3/entry/sx#i1",
        ] {
            assert!(DecisionId::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = DecisionId::new("f", "entry", 0, 3);
        let b = DecisionId::new("f", "entry", 1, 9);
        assert!(a < b);
        let set: std::collections::HashSet<_> = [a.clone(), b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
