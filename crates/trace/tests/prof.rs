//! Golden tests for the `snslp-prof` exporters under the deterministic
//! virtual clock: every `clock::now_ns()` read advances exactly one tick
//! (1µs), so span timestamps — and therefore the rendered Chrome-trace
//! JSON, folded stacks and `--time-passes` table — are byte-stable.
//!
//! The profiler's facet mask, track store and clock are process-global,
//! so every test takes one lock and restores the world on exit (also on
//! panic, via the RAII guard).

use std::sync::Mutex;

use snslp_trace::{clock, prof, Facet, ProfSpan};

static LOCK: Mutex<()> = Mutex::new(());

/// Guard that owns the global profiler state for one test: clears the
/// buffers, switches to the virtual clock and enables the Prof facet on
/// entry; undoes all three on drop (including unwinds).
struct ProfWorld {
    _guard: std::sync::MutexGuard<'static, ()>,
    prev_facets: u32,
}

impl ProfWorld {
    fn enter() -> ProfWorld {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        prof::clear();
        clock::set_virtual(true);
        let prev_facets = snslp_trace::set_facets(Facet::Prof as u32);
        ProfWorld {
            _guard: guard,
            prev_facets,
        }
    }
}

impl Drop for ProfWorld {
    fn drop(&mut self) {
        snslp_trace::set_facets(self.prev_facets);
        clock::set_virtual(false);
        prof::clear();
    }
}

/// One fixed span tree: outer(1µs..5µs) wrapping inner(2µs..4µs) with a
/// counter sample at 3µs. Five clock reads, each one tick.
fn record_fixture() -> snslp_trace::Profile {
    let outer = ProfSpan::enter("outer"); // t=1µs
    let inner = ProfSpan::enter_with("inner", || "fn @f".to_string()); // t=2µs
    snslp_trace::prof_counter("rate", 0.5); // t=3µs
    drop(inner); // t=4µs, dur=2µs
    drop(outer); // t=5µs, dur=4µs
    prof::take_profile()
}

#[test]
fn chrome_json_is_byte_stable_under_virtual_clock() {
    let expected = concat!(
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"main\"}},\n",
        "{\"name\":\"outer\",\"cat\":\"snslp\",\"ph\":\"X\",\"ts\":1,\"dur\":4,\"pid\":1,\"tid\":0},\n",
        "{\"name\":\"inner\",\"cat\":\"snslp\",\"ph\":\"X\",\"ts\":2,\"dur\":2,\"pid\":1,\"tid\":0,",
        "\"args\":{\"label\":\"fn @f\"}},\n",
        "{\"name\":\"rate\",\"ph\":\"C\",\"ts\":3,\"pid\":1,\"tid\":0,\"args\":{\"value\":0.5}}\n",
        "]}\n",
    );

    let first = {
        let _world = ProfWorld::enter();
        record_fixture().to_chrome_json()
    };
    assert_eq!(first, expected);

    // Determinism: a fresh virtual-clock run reproduces the bytes.
    let second = {
        let _world = ProfWorld::enter();
        record_fixture().to_chrome_json()
    };
    assert_eq!(second, first);
}

#[test]
fn folded_and_time_passes_match_the_span_tree() {
    let _world = ProfWorld::enter();
    let profile = record_fixture();

    // Self time: outer 4µs - 2µs child = 2µs; inner keeps its 2µs.
    assert_eq!(
        profile.to_folded(),
        "main;outer 2000\nmain;outer;inner 2000\n"
    );

    let totals = profile.totals();
    assert_eq!(totals["outer"].total_ns, 4_000);
    assert_eq!(totals["outer"].self_ns, 2_000);
    assert_eq!(totals["inner"].total_ns, 2_000);
    assert_eq!(totals["inner"].count, 1);

    let table = profile.time_passes();
    let lines: Vec<&str> = table.lines().collect();
    assert_eq!(lines.len(), 6, "{table}");
    // Sorted by total time descending: outer before inner.
    assert!(
        lines[3].ends_with("outer") && lines[3].contains("4.0us"),
        "{table}"
    );
    assert!(
        lines[4].ends_with("inner") && lines[4].contains("2.0us"),
        "{table}"
    );
    assert!(
        lines[5].contains("(wall, sum of self)") && lines[5].contains("4.0us"),
        "{table}"
    );

    assert_eq!(profile.span_names(), vec!["inner", "outer"]);
}

#[test]
fn every_worker_gets_a_track_even_when_starved() {
    let _world = ProfWorld::enter();
    std::thread::scope(|s| {
        s.spawn(|| {
            let span = ProfSpan::enter("work");
            drop(span);
            prof::flush_thread("worker-0");
        });
        s.spawn(|| {
            // This worker never recorded anything; its track must still
            // materialize so the trace shows the whole pool.
            prof::flush_thread("worker-1");
        });
    });
    let profile = prof::take_profile();
    let labels: Vec<&str> = profile.tracks.iter().map(|t| t.label.as_str()).collect();
    assert_eq!(labels, vec!["main", "worker-0", "worker-1"]);
    assert_eq!(profile.tracks[1].events.len(), 1);
    assert!(profile.tracks[2].events.is_empty());
}

#[test]
fn repeated_flushes_to_one_label_append() {
    let _world = ProfWorld::enter();
    drop(ProfSpan::enter("a"));
    prof::flush_thread("w");
    drop(ProfSpan::enter("b"));
    prof::flush_thread("w");
    let profile = prof::take_profile();
    let w = profile.tracks.iter().find(|t| t.label == "w").unwrap();
    assert_eq!(w.events.len(), 2);
}

#[test]
fn disabled_profiler_produces_an_empty_profile() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    prof::clear();
    assert!(!prof::profiling());
    drop(ProfSpan::enter("ignored"));
    snslp_trace::prof_counter("ignored", 1.0);
    prof::flush_thread("worker-9");
    let profile = prof::take_profile();
    assert!(profile.is_empty());
    assert!(profile.tracks.is_empty(), "{:?}", profile.tracks);
    assert_eq!(
        profile.to_chrome_json(),
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n"
    );
    assert_eq!(profile.to_folded(), "");
}
