//! Proves the "zero-cost when disabled" claim: with every facet off, the
//! instrumentation API performs no heap allocation at all.
//!
//! A counting global allocator wraps the system one; the test drives every
//! hot-path entry point (event macro, span, counter bump, remark emit) and
//! asserts the allocation count does not move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_emits_nothing_and_allocates_nothing() {
    // Integration tests get a fresh process: all facets default to off.
    assert_eq!(snslp_trace::facets(), 0, "facets must default to off");

    // Warm up the lazily-initialized thread-locals (metrics cells) and
    // build the one remark we re-emit, so those one-time allocations are
    // not charged to the steady state below.
    snslp_trace::bump(snslp_trace::Counter::SeedsCollected);
    let remark = snslp_trace::Remark {
        pass: "snslp".to_string(),
        function: "@f".to_string(),
        block: "entry".to_string(),
        site: "%t1".to_string(),
        inst: 1,
        decision: snslp_trace::DecisionId::new("f", "entry", 0, 1),
        seed_kind: "store".to_string(),
        width: 4,
        vectorized: true,
        reason: snslp_trace::ReasonCode::Profitable,
        cost: Some(-6),
        detail: String::new(),
    };

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..1000u64 {
        // Field expressions must not be evaluated, so the format! here
        // must never run.
        snslp_trace::trace_event!("hot.event", "i" => i, "s" => format!("lane {i}"));
        let span = snslp_trace::Span::enter("hot.span");
        span.note("k", "value");
        drop(span);
        snslp_trace::bump(snslp_trace::Counter::BundlesAttempted);
        snslp_trace::add(snslp_trace::Counter::LookaheadScoreEvals, 3);
        remark.emit();
        // Profiler entry points are inert too: no clock read is
        // observable here, but the allocation count proves no event was
        // buffered and no label was built.
        let p = snslp_trace::ProfSpan::enter("hot.prof");
        drop(p);
        let p = snslp_trace::ProfSpan::enter_with("hot.prof", || format!("label {i}"));
        drop(p);
        snslp_trace::prof_counter("hot.counter", i as f64);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled tracing hot path must not allocate"
    );

    // And nothing was emitted: flip a sink on afterwards and confirm the
    // buffer only sees *new* records.
    let lines = snslp_trace::capture(snslp_trace::Facet::Events as u32, || {
        snslp_trace::trace_event!("now.visible");
    });
    assert_eq!(lines, vec!["[snslp] event now.visible".to_string()]);
}

#[test]
fn counters_still_collect_while_disabled() {
    // Collection is always on (the facet gates emission only), so tools
    // can read a MetricsSnapshot without ever enabling a facet.
    let before = snslp_trace::MetricsSnapshot::current();
    snslp_trace::add(snslp_trace::Counter::GathersEmitted, 7);
    let delta = snslp_trace::MetricsSnapshot::current().delta_since(&before);
    assert_eq!(delta.get(snslp_trace::Counter::GathersEmitted), 7);
}
