//! `snslpc` — the SN-SLP textual-IR compiler driver.
//!
//! Reads a `.snir` module (or stdin with `-`), runs scalar cleanup and
//! the selected vectorizer, and prints the transformed module.
//!
//! ```text
//! usage: snslpc [options] <file.snir | ->
//!   --mode o3|slp|lslp|snslp   vectorizer (default snslp)
//!   --target sse2|avx2|noaltop target description (default sse2)
//!   --stats[=FILE]             per-function pass statistics to stderr,
//!                              or a snslp-stats/v1 JSON report to FILE
//!   --graphs                   print the full per-graph report to stderr
//!   --report[=FILE]            write the single-file HTML vectorization
//!                              explorer (default snslp-report.html):
//!                              per-decision attribution joining remarks,
//!                              graph snapshots, per-decision compile
//!                              time, and (with --run) dynamic cycles
//!   --profile[=FILE]           write a Chrome-trace/Perfetto profile
//!                              (default snslp-prof.json); load it in
//!                              chrome://tracing or ui.perfetto.dev
//!   --profile-folded=FILE      write folded flamegraph stacks to FILE
//!   --time-passes              print a per-span timing table to stderr
//!   --no-reductions            disable horizontal-reduction seeds
//!   --verify                   verify the IR after every rewrite
//!   --run[=ENTRY]              interpret ENTRY (default: the module's
//!                              only function) after compilation and
//!                              print its dynamic execution profile;
//!                              arguments come from the module's
//!                              `; INPUTS:` comment line
//!   --backend interp|jit       with --run, how to execute the entry
//!                              (default interp). `jit` compiles the
//!                              committed IR to native x86-64 SSE2 code,
//!                              cross-checks it bit-exactly against the
//!                              interpreter, and reports measured wall
//!                              time; functions the JIT declines fall
//!                              back to the interpreter with a remark
//!   --dyn-profile[=FILE]       with --run, also write the profile as a
//!                              snslp-dynstats/v1 JSON document
//!                              (default snslp-dyn.json)
//!   --jit-strict               with --backend jit, fail (exit non-zero)
//!                              if the JIT declines the entry function
//!                              instead of falling back to the
//!                              interpreter
//!   --hot-profile[=FILE]       with --run, compile the entry with
//!                              instrumented-hotness lowering, run it
//!                              natively, and write the exact
//!                              snslp-hot/v1 profile (default
//!                              snslp-hot.json); reconciled against the
//!                              interpreter's DynProfile
//!   --hot-sampled[=FILE]       with --run, profile the native entry
//!                              with the SIGPROF wall-clock sampler and
//!                              write the sampled snslp-hot/v1 profile
//!                              (default snslp-hot-sampled.json);
//!                              gracefully skipped off x86-64 Linux
//!   --perf-map[=DIR]           write Linux perf export files for every
//!                              JIT-covered function: perf-<pid>.map and
//!                              jit-<pid>.dump under DIR (default /tmp);
//!                              see `perf report` docs for usage
//! ```
//!
//! Functions are compiled by the parallel module driver (worker count
//! from `SNSLP_THREADS` or the host CPU count); with `--profile`, each
//! worker contributes its own named track to the trace.
//!
//! Tracing: set `SNSLP_TRACE=events,remarks,metrics,dot[=DIR],prof[,json]`
//! (or `all`) to stream structured records from the pass to stderr —
//! see the `snslp_trace` crate docs.

use std::io::Read;
use std::process::ExitCode;

use snslp::bench::attrib::{attrib_function, render_html, AttribReport, DynSummary};
use snslp::bench::dynstats::{DynReport, KernelDyn, ModeDyn};
use snslp::bench::stats::{mode_code, StatsReport};
use snslp::core::{optimize_o3, run_slp_module, FunctionReport, SlpConfig, SlpMode};
use snslp::cost::{CostModel, TargetDesc};
use snslp::interp::{parse_inputs_line, run_with_args, ExecOptions};
use snslp::ir::parse_module;

struct Options {
    mode: Option<SlpMode>,
    target: TargetDesc,
    stats: bool,
    stats_out: Option<String>,
    graphs: bool,
    report_out: Option<String>,
    profile_out: Option<String>,
    folded_out: Option<String>,
    time_passes: bool,
    reductions: bool,
    verify: bool,
    run: Option<Option<String>>,
    backend: snslp::jit::Backend,
    dyn_out: Option<String>,
    jit_strict: bool,
    hot_out: Option<String>,
    hot_sampled_out: Option<String>,
    perf_map_dir: Option<String>,
    input: String,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: snslpc [--mode o3|slp|lslp|snslp] [--target sse2|avx2|noaltop] \
         [--stats[=FILE]] [--graphs] [--report[=FILE]] [--profile[=FILE]] \
         [--profile-folded=FILE] \
         [--time-passes] [--no-reductions] [--verify] [--run[=ENTRY]] \
         [--backend interp|jit] [--dyn-profile[=FILE]] [--jit-strict] \
         [--hot-profile[=FILE]] [--hot-sampled[=FILE]] [--perf-map[=DIR]] \
         <file.snir | ->"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        mode: Some(SlpMode::SnSlp),
        target: TargetDesc::sse2_like(),
        stats: false,
        stats_out: None,
        graphs: false,
        report_out: None,
        profile_out: None,
        folded_out: None,
        time_passes: false,
        reductions: true,
        verify: false,
        run: None,
        backend: snslp::jit::Backend::default(),
        dyn_out: None,
        jit_strict: false,
        hot_out: None,
        hot_sampled_out: None,
        perf_map_dir: None,
        input: String::new(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                i += 1;
                opts.mode = match args.get(i).map(String::as_str) {
                    Some("o3") => None,
                    Some("slp") => Some(SlpMode::Slp),
                    Some("lslp") => Some(SlpMode::Lslp),
                    Some("snslp") => Some(SlpMode::SnSlp),
                    _ => return Err(usage()),
                };
            }
            "--target" => {
                i += 1;
                opts.target = match args.get(i).map(String::as_str) {
                    Some("sse2") => TargetDesc::sse2_like(),
                    Some("avx2") => TargetDesc::avx2_like(),
                    Some("noaltop") => TargetDesc::no_altop_128(),
                    _ => return Err(usage()),
                };
            }
            "--stats" => opts.stats = true,
            "--graphs" => opts.graphs = true,
            "--report" => opts.report_out = Some("snslp-report.html".to_string()),
            "--profile" => opts.profile_out = Some("snslp-prof.json".to_string()),
            "--time-passes" => opts.time_passes = true,
            "--no-reductions" => opts.reductions = false,
            "--verify" => opts.verify = true,
            "--run" => opts.run = Some(None),
            "--backend" => {
                i += 1;
                opts.backend = match args.get(i).map(|b| b.parse()) {
                    Some(Ok(b)) => b,
                    _ => return Err(usage()),
                };
            }
            "--dyn-profile" => opts.dyn_out = Some("snslp-dyn.json".to_string()),
            "--jit-strict" => opts.jit_strict = true,
            "--hot-profile" => opts.hot_out = Some("snslp-hot.json".to_string()),
            "--hot-sampled" => opts.hot_sampled_out = Some("snslp-hot-sampled.json".to_string()),
            "--perf-map" => opts.perf_map_dir = Some("/tmp".to_string()),
            "--help" | "-h" => return Err(usage()),
            arg => {
                if let Some(path) = arg.strip_prefix("--stats=") {
                    opts.stats_out = Some(path.to_string());
                } else if let Some(path) = arg.strip_prefix("--report=") {
                    opts.report_out = Some(path.to_string());
                } else if let Some(path) = arg.strip_prefix("--profile=") {
                    opts.profile_out = Some(path.to_string());
                } else if let Some(path) = arg.strip_prefix("--profile-folded=") {
                    opts.folded_out = Some(path.to_string());
                } else if let Some(entry) = arg.strip_prefix("--run=") {
                    opts.run = Some(Some(entry.trim_start_matches('@').to_string()));
                } else if let Some(b) = arg.strip_prefix("--backend=") {
                    opts.backend = match b.parse() {
                        Ok(b) => b,
                        Err(e) => {
                            eprintln!("snslpc: {e}");
                            return Err(usage());
                        }
                    };
                } else if let Some(path) = arg.strip_prefix("--dyn-profile=") {
                    opts.dyn_out = Some(path.to_string());
                } else if let Some(path) = arg.strip_prefix("--hot-profile=") {
                    opts.hot_out = Some(path.to_string());
                } else if let Some(path) = arg.strip_prefix("--hot-sampled=") {
                    opts.hot_sampled_out = Some(path.to_string());
                } else if let Some(dir) = arg.strip_prefix("--perf-map=") {
                    opts.perf_map_dir = Some(dir.to_string());
                } else if opts.input.is_empty() && !arg.starts_with("--") {
                    opts.input = arg.to_string();
                } else {
                    return Err(usage());
                }
            }
        }
        i += 1;
    }
    if opts.input.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

/// The compilation-unit name `--stats=FILE` and `--report` documents
/// carry: the input's file stem, or `stdin`.
fn unit_name(input: &str) -> String {
    if input == "-" {
        return "stdin".to_string();
    }
    std::path::Path::new(input)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| input.to_string())
}

/// `--run`: interprets the compiled entry function on the arguments of
/// the module's `; INPUTS:` comment line and prints its dynamic profile
/// to stderr (and, with `--dyn-profile`, a `snslp-dynstats/v1` document
/// to a file). Returns the entry function's dynamic summary so
/// `--report` can join it into the attribution table.
fn run_entry(
    module: &snslp::ir::Module,
    source: &str,
    entry: Option<&str>,
    opts: &Options,
    reports: &[FunctionReport],
) -> Result<(String, DynSummary), String> {
    let fns: Vec<_> = module.functions().iter().collect();
    let f = match entry {
        Some(name) => *fns.iter().find(|f| f.name() == name).ok_or_else(|| {
            let have: Vec<String> = fns.iter().map(|f| format!("@{}", f.name())).collect();
            format!(
                "no function @{name} in the module (have: {})",
                have.join(", ")
            )
        })?,
        None => match fns.as_slice() {
            [only] => *only,
            _ => {
                return Err(format!(
                    "--run needs =ENTRY: the module has {} functions",
                    fns.len()
                ))
            }
        },
    };

    let inputs = source.lines().find_map(|l| {
        l.trim()
            .strip_prefix(';')
            .map(str::trim)
            .and_then(|c| c.strip_prefix("INPUTS:"))
    });
    let args = match inputs {
        Some(spec) => parse_inputs_line(spec)?,
        None if f.params().is_empty() => Vec::new(),
        None => {
            return Err(format!(
                "@{} takes {} parameters but the module has no `; INPUTS:` line \
                 describing them (e.g. `; INPUTS: f64[0,0] f64[1.5,2.0] i64:3`)",
                f.name(),
                f.params().len()
            ))
        }
    };

    let model = CostModel::new(opts.target.clone());
    let out = run_with_args(f, &args, &model, &ExecOptions::default())
        .map_err(|e| format!("@{}: execution failed: {e}", f.name()))?;

    eprintln!(
        "@{}: {} simulated cycles, {} dynamic instructions",
        f.name(),
        out.exec.cycles,
        out.exec.dyn_insts
    );
    if let Some(ret) = &out.exec.ret {
        eprintln!("@{}: returned {ret:?}", f.name());
    }
    eprint!("{}", out.exec.profile.render());

    let report = reports.iter().find(|r| r.function == f.name());
    let label = match opts.mode {
        None => "o3",
        Some(SlpMode::Slp) => "slp",
        Some(SlpMode::Lslp) => "lslp",
        Some(SlpMode::SnSlp) => "snslp",
    };

    // `--backend jit`: the interpreter pass above remains the profile
    // source; the native pass adds measured wall time after a bit-exact
    // cross-check of every observable.
    let wall_ns = match opts.backend {
        snslp::jit::Backend::Interp => None,
        snslp::jit::Backend::Jit => {
            match snslp::jit::check_backends(f, &args, &model, &ExecOptions::default())
                .map_err(|d| format!("@{}: backend divergence: {d}", f.name()))?
            {
                snslp::jit::BackendDiff::NotCovered { reason } => {
                    if opts.jit_strict {
                        return Err(format!(
                            "@{}: --jit-strict: native backend not used ({reason})",
                            f.name()
                        ));
                    }
                    eprintln!(
                        "@{}: native backend not used ({reason}); interpreter result stands",
                        f.name()
                    );
                    None
                }
                snslp::jit::BackendDiff::Agreed => {
                    let wall = snslp::bench::native_wall_ns(f, &args);
                    if let Some(ns) = wall {
                        eprintln!(
                            "@{}: native x86-64 run matches the interpreter bit-exactly; \
                             {ns} ns wall (min of {} runs)",
                            f.name(),
                            snslp::bench::WALL_REPEATS
                        );
                    }
                    wall
                }
            }
        }
    };

    if let Some(path) = &opts.dyn_out {
        // The per-class wall split rides along whenever the native
        // backend measured this run: an instrumented hotness pass
        // apportions the wall time by executed native bytes.
        let class_ns = wall_ns.and_then(|w| {
            let decisions = report
                .map(snslp::bench::hot::decision_map)
                .unwrap_or_default();
            snslp::bench::hot::native_hot(f, &args, decisions)
                .map(|h| snslp::bench::hot::class_ns_split(&h, w))
        });
        let doc = DynReport {
            kernels: vec![KernelDyn {
                name: f.name().to_string(),
                iters: 1,
                modes: vec![ModeDyn {
                    label: label.to_string(),
                    cycles: out.exec.cycles,
                    dyn_insts: out.exec.dyn_insts,
                    predicted_cost: report.map(|r| r.predicted_cost()).unwrap_or(0),
                    vectorized_graphs: report.map(|r| r.vectorized_graphs() as u64).unwrap_or(0),
                    profile: out.exec.profile.clone(),
                    wall_ns,
                    class_ns,
                }],
            }],
        };
        std::fs::write(path, doc.to_json()).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("snslpc: dynamic profile written to {path}");
    }

    // `--hot-profile`: the exact instrumented native hotness profile,
    // reconciled against the interpreter's DynProfile before writing.
    if let Some(path) = &opts.hot_out {
        let decisions = report
            .map(snslp::bench::hot::decision_map)
            .unwrap_or_default();
        match snslp::bench::hot::measure_hot(f, &args, decisions)? {
            Some((profile, dyn_insts)) => {
                let doc = snslp::bench::hot::HotDoc {
                    mode: snslp::jit::HotMode::Instrumented,
                    entries: vec![snslp::bench::hot::HotEntry {
                        kernel: f.name().to_string(),
                        label: label.to_string(),
                        dyn_insts,
                        profile,
                    }],
                };
                std::fs::write(path, doc.to_json())
                    .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                eprintln!("snslpc: instrumented hot profile written to {path}");
            }
            None => eprintln!(
                "snslpc: no hot profile: the JIT declined @{} or this host \
                 has no native backend",
                f.name()
            ),
        }
    }

    // `--hot-sampled`: SIGPROF wall-clock samples resolved through the
    // PC→IR map. Nondeterministic by nature; skipped off x86-64 Linux.
    if let Some(path) = &opts.hot_sampled_out {
        let decisions = report
            .map(snslp::bench::hot::decision_map)
            .unwrap_or_default();
        match snslp::bench::hot::sampled_hot(f, &args, decisions, 1_000, 200) {
            Some(profile) => {
                let doc = snslp::bench::hot::HotDoc {
                    mode: snslp::jit::HotMode::Sampled,
                    entries: vec![snslp::bench::hot::HotEntry {
                        kernel: f.name().to_string(),
                        label: label.to_string(),
                        dyn_insts: 0,
                        profile,
                    }],
                };
                std::fs::write(path, doc.to_json())
                    .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                eprintln!("snslpc: sampled hot profile written to {path}");
            }
            None => eprintln!(
                "snslpc: sampled profiling skipped: it needs x86-64 Linux, \
                 JIT coverage of @{}, and no other active sampler",
                f.name()
            ),
        }
    }
    Ok((
        f.name().to_string(),
        DynSummary {
            cycles: out.exec.cycles,
            o3_cycles: 0,
            dyn_insts: out.exec.dyn_insts,
            vector_ops: out.exec.profile.vector_ops,
            scalar_ops: out.exec.profile.scalar_ops,
            mean_lanes: out.exec.profile.mean_lanes(),
        },
    ))
}

fn main() -> ExitCode {
    if let Err(e) = snslp::trace::init_from_env() {
        eprintln!("snslpc: {e}");
        return ExitCode::from(2);
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    // The report joins per-decision profiler spans, so `--report` turns
    // profiling on even without an explicit `--profile`.
    let profiling = opts.profile_out.is_some()
        || opts.folded_out.is_some()
        || opts.time_passes
        || opts.report_out.is_some();
    if profiling {
        snslp::trace::set_facets(snslp::trace::facets() | snslp::trace::Facet::Prof as u32);
    }

    let source = if opts.input == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("snslpc: failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&opts.input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("snslpc: cannot read `{}`: {e}", opts.input);
                return ExitCode::FAILURE;
            }
        }
    };

    let mut module = match parse_module(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("snslpc: {}: {e}", opts.input);
            // Show the offending source line with a caret under the
            // column, rustc-style, so the error is fixable without
            // opening the file and counting characters.
            if let Some(text) = source.lines().nth(e.line.saturating_sub(1) as usize) {
                eprintln!("  {} | {text}", e.line);
                if e.col > 0 {
                    let gutter = e.line.to_string().len();
                    let pad: String = text
                        .chars()
                        .take(e.col.saturating_sub(1) as usize)
                        .map(|c| if c == '\t' { '\t' } else { ' ' })
                        .collect();
                    eprintln!("  {} | {pad}^", " ".repeat(gutter));
                }
            }
            return ExitCode::FAILURE;
        }
    };
    for f in module.functions() {
        if let Err(e) = snslp::ir::verify(f) {
            eprintln!("snslpc: input function @{} is malformed:\n{e}", f.name());
            return ExitCode::FAILURE;
        }
    }

    let mut slp_reports = Vec::new();
    match opts.mode {
        None => {
            for f in module.functions_mut() {
                let t = optimize_o3(f);
                if opts.stats {
                    eprintln!("@{}: O3 cleanup in {t:?}", f.name());
                }
            }
            if opts.stats_out.is_some() {
                eprintln!("snslpc: --stats=FILE needs a vectorizer mode (not o3)");
                return ExitCode::FAILURE;
            }
            if opts.report_out.is_some() {
                eprintln!("snslpc: --report needs a vectorizer mode (not o3)");
                return ExitCode::FAILURE;
            }
        }
        Some(mode) => {
            let mut cfg = SlpConfig::new(mode).with_model(CostModel::new(opts.target.clone()));
            cfg.enable_reductions = opts.reductions;
            cfg.verify_after = opts.verify;
            // The report embeds decision-stamped graph snapshots.
            cfg.keep_graph_dots = opts.report_out.is_some();
            let reports = run_slp_module(&mut module, &cfg);
            for report in &reports {
                if opts.graphs {
                    eprint!("{report}");
                }
                if opts.stats {
                    eprintln!(
                        "@{}: {} — vectorized {}/{} graphs, aggregate Super-Node size {}, in {:?}",
                        report.function,
                        mode.label(),
                        report.vectorized_graphs(),
                        report.graphs.len(),
                        report.aggregate_super_node_size(),
                        report.elapsed,
                    );
                }
            }
            if let Some(path) = &opts.stats_out {
                let unit = unit_name(&opts.input);
                let stats = StatsReport::from_reports(
                    mode_code(mode),
                    reports.iter().map(|r| (unit.as_str(), r)),
                );
                if let Err(e) = std::fs::write(path, stats.to_json()) {
                    eprintln!("snslpc: cannot write `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            }
            slp_reports = reports;
        }
    }

    // `--perf-map`: export every JIT-covered function of the compiled
    // module for external `perf report` symbolization.
    if let Some(dir) = &opts.perf_map_dir {
        if snslp::jit::native_supported() {
            let natives: Vec<snslp::jit::JitFunction> = module
                .functions()
                .iter()
                .filter_map(|f| snslp::jit::compile(f).ok()?.finalize().ok())
                .collect();
            {
                let syms: Vec<snslp::jit::perf::JitSym> = natives
                    .iter()
                    .map(|n| snslp::jit::perf::JitSym {
                        name: n.name(),
                        addr: n.code_base(),
                        code: n.code(),
                    })
                    .collect();
                match snslp::jit::perf::write_perf_files(std::path::Path::new(dir), &syms) {
                    Ok((map, dump)) => eprintln!(
                        "snslpc: perf export: {} and {} ({} of {} functions JIT-covered)",
                        map.display(),
                        dump.display(),
                        syms.len(),
                        module.functions().len()
                    ),
                    Err(e) => {
                        eprintln!("snslpc: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            // The map names live addresses: keep the exported mappings
            // around for the rest of the process so a later compile
            // cannot recycle an address and mis-symbolize samples.
            std::mem::forget(natives);
        } else {
            eprintln!("snslpc: --perf-map skipped: this host has no native backend");
        }
    }

    for (flag, set) in [
        ("--dyn-profile", opts.dyn_out.is_some()),
        ("--hot-profile", opts.hot_out.is_some()),
        ("--hot-sampled", opts.hot_sampled_out.is_some()),
    ] {
        if set && opts.run.is_none() {
            eprintln!("snslpc: {flag} needs --run");
            return ExitCode::FAILURE;
        }
    }
    if opts.jit_strict && (opts.run.is_none() || opts.backend != snslp::jit::Backend::Jit) {
        eprintln!("snslpc: --jit-strict needs --run and --backend jit");
        return ExitCode::FAILURE;
    }

    let mut dyn_info: Option<(String, DynSummary)> = None;
    if let Some(entry) = &opts.run {
        match run_entry(&module, &source, entry.as_deref(), &opts, &slp_reports) {
            Ok(info) => dyn_info = Some(info),
            Err(e) => {
                eprintln!("snslpc: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if profiling {
        let profile = snslp::trace::prof::take_profile();
        if let Some(path) = &opts.report_out {
            let unit = unit_name(&opts.input);
            let report = AttribReport {
                // `--report` was rejected above unless a vectorizer ran.
                mode: mode_code(opts.mode.expect("mode checked earlier")).to_string(),
                functions: slp_reports
                    .iter()
                    .map(|r| {
                        let dyn_run = dyn_info
                            .as_ref()
                            .filter(|(name, _)| *name == r.function)
                            .map(|(_, d)| d);
                        // Module sources carry no kernel arg spec, so no
                        // native hotness run joins here; the native
                        // columns render as `-`.
                        attrib_function(&unit, r, &profile, dyn_run, None)
                    })
                    .collect(),
            };
            if let Err(e) = std::fs::write(path, render_html(&report)) {
                eprintln!("snslpc: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("snslpc: vectorization report written to {path}");
        }
        if let Some(path) = &opts.profile_out {
            if let Err(e) = std::fs::write(path, profile.to_chrome_json()) {
                eprintln!("snslpc: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("snslpc: profile written to {path}");
        }
        if let Some(path) = &opts.folded_out {
            if let Err(e) = std::fs::write(path, profile.to_folded()) {
                eprintln!("snslpc: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
        if opts.time_passes {
            eprint!("{}", profile.time_passes());
        }
    }

    print!("{module}");
    ExitCode::SUCCESS
}
