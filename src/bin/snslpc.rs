//! `snslpc` — the SN-SLP textual-IR compiler driver.
//!
//! Reads a `.snir` module (or stdin with `-`), runs scalar cleanup and
//! the selected vectorizer, and prints the transformed module.
//!
//! ```text
//! usage: snslpc [options] <file.snir | ->
//!   --mode o3|slp|lslp|snslp   vectorizer (default snslp)
//!   --target sse2|avx2|noaltop target description (default sse2)
//!   --stats                    print per-function pass statistics to stderr
//!   --report                   print the full per-graph report to stderr
//!   --no-reductions            disable horizontal-reduction seeds
//!   --verify                   verify the IR after every rewrite
//! ```
//!
//! Tracing: set `SNSLP_TRACE=events,remarks,metrics,dot[=DIR][,json]`
//! (or `all`) to stream structured records from the pass to stderr —
//! see the `snslp_trace` crate docs.

use std::io::Read;
use std::process::ExitCode;

use snslp::core::{optimize_o3, run_slp, SlpConfig, SlpMode};
use snslp::cost::{CostModel, TargetDesc};
use snslp::ir::parse_module;

struct Options {
    mode: Option<SlpMode>,
    target: TargetDesc,
    stats: bool,
    report: bool,
    reductions: bool,
    verify: bool,
    input: String,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: snslpc [--mode o3|slp|lslp|snslp] [--target sse2|avx2|noaltop] \
         [--stats] [--report] [--no-reductions] [--verify] <file.snir | ->"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        mode: Some(SlpMode::SnSlp),
        target: TargetDesc::sse2_like(),
        stats: false,
        report: false,
        reductions: true,
        verify: false,
        input: String::new(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                i += 1;
                opts.mode = match args.get(i).map(String::as_str) {
                    Some("o3") => None,
                    Some("slp") => Some(SlpMode::Slp),
                    Some("lslp") => Some(SlpMode::Lslp),
                    Some("snslp") => Some(SlpMode::SnSlp),
                    _ => return Err(usage()),
                };
            }
            "--target" => {
                i += 1;
                opts.target = match args.get(i).map(String::as_str) {
                    Some("sse2") => TargetDesc::sse2_like(),
                    Some("avx2") => TargetDesc::avx2_like(),
                    Some("noaltop") => TargetDesc::no_altop_128(),
                    _ => return Err(usage()),
                };
            }
            "--stats" => opts.stats = true,
            "--report" => opts.report = true,
            "--no-reductions" => opts.reductions = false,
            "--verify" => opts.verify = true,
            "--help" | "-h" => return Err(usage()),
            arg if opts.input.is_empty() => opts.input = arg.to_string(),
            _ => return Err(usage()),
        }
        i += 1;
    }
    if opts.input.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    if let Err(e) = snslp::trace::init_from_env() {
        eprintln!("snslpc: {e}");
        return ExitCode::from(2);
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let source = if opts.input == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("snslpc: failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&opts.input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("snslpc: cannot read `{}`: {e}", opts.input);
                return ExitCode::FAILURE;
            }
        }
    };

    let mut module = match parse_module(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("snslpc: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in module.functions() {
        if let Err(e) = snslp::ir::verify(f) {
            eprintln!("snslpc: input function @{} is malformed:\n{e}", f.name());
            return ExitCode::FAILURE;
        }
    }

    for f in module.functions_mut() {
        match opts.mode {
            None => {
                let t = optimize_o3(f);
                if opts.stats {
                    eprintln!("@{}: O3 cleanup in {t:?}", f.name());
                }
            }
            Some(mode) => {
                let mut cfg = SlpConfig::new(mode).with_model(CostModel::new(opts.target.clone()));
                cfg.enable_reductions = opts.reductions;
                cfg.verify_after = opts.verify;
                let report = run_slp(f, &cfg);
                if opts.report {
                    eprint!("{report}");
                }
                if opts.stats {
                    eprintln!(
                        "@{}: {} — vectorized {}/{} graphs, aggregate Super-Node size {}, in {:?}",
                        f.name(),
                        mode.label(),
                        report.vectorized_graphs(),
                        report.graphs.len(),
                        report.aggregate_super_node_size(),
                        report.elapsed,
                    );
                }
            }
        }
    }

    print!("{module}");
    ExitCode::SUCCESS
}
