//! # snslp
//!
//! Facade crate for the Super-Node SLP (CGO 2019) reproduction: a
//! from-scratch Rust implementation of the SLP / LSLP / SN-SLP
//! auto-vectorizer family on a custom SSA IR, together with the paper's
//! evaluation workloads.
//!
//! The individual crates are re-exported as modules:
//!
//! * [`ir`] — the SSA intermediate representation (`snslp-ir`);
//! * [`cost`] — target descriptions and the cost model (`snslp-cost`);
//! * [`interp`] — the reference interpreter (`snslp-interp`);
//! * [`jit`] — the native x86-64 JIT backend executing committed IR as
//!   real SSE2 machine code, with interpreter fallback (`snslp-jit`);
//! * [`core`] — the vectorizer passes (`snslp-core`);
//! * [`kernels`] — the Table I kernel suite (`snslp-kernels`);
//! * [`trace`] — structured tracing, remarks and metrics (`snslp-trace`);
//! * [`fuzz`] — offline differential fuzzing: generator, oracle and
//!   reducer (`snslp-fuzz`).
//!
//! # Examples
//!
//! ```
//! use snslp::core::{run_slp, SlpConfig, SlpMode};
//! use snslp::kernels::kernel_by_name;
//!
//! let kernel = kernel_by_name("motiv_trunk").unwrap();
//! let mut f = kernel.build();
//! let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
//! assert_eq!(report.vectorized_graphs(), 1);
//! ```

#![warn(missing_docs)]

pub use snslp_bench as bench;
pub use snslp_core as core;
pub use snslp_cost as cost;
pub use snslp_fuzz as fuzz;
pub use snslp_interp as interp;
pub use snslp_ir as ir;
pub use snslp_jit as jit;
pub use snslp_kernels as kernels;
pub use snslp_serve as serve;
pub use snslp_trace as trace;
