//! Horizontal reductions: an unrolled dot product is turned into vector
//! multiplies plus a shuffle-based horizontal reduction (the paper's
//! `-slp-vectorize-hor` seeds), on both the 128-bit and 256-bit targets.
//!
//! Run with: `cargo run --example dot_product`

use snslp::core::{run_slp, SlpConfig, SlpMode};
use snslp::cost::{CostModel, TargetDesc};
use snslp::interp::{run_with_args, ArgSpec, ExecOptions};
use snslp::ir::{Function, FunctionBuilder, Param, ScalarType, Type};

const TERMS: usize = 8;

/// `out[0] = Σ_{k<8} a[k]·b[k]` as straight-line scalar code.
fn build() -> Function {
    let mut fb = FunctionBuilder::new(
        "dot8",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("a"),
            Param::noalias_ptr("b"),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let out = fb.func().param(0);
    let a = fb.func().param(1);
    let b = fb.func().param(2);
    let mut terms = Vec::new();
    for k in 0..TERMS as i64 {
        let pa = fb.ptradd_const(a, 8 * k);
        let pb = fb.ptradd_const(b, 8 * k);
        let x = fb.load(ScalarType::F64, pa);
        let y = fb.load(ScalarType::F64, pb);
        terms.push(fb.mul(x, y));
    }
    let mut acc = terms[0];
    for &t in &terms[1..] {
        acc = fb.add(acc, t);
    }
    fb.store(out, acc);
    fb.ret(None);
    fb.finish()
}

fn main() {
    let args = vec![
        ArgSpec::F64Array(vec![0.0]),
        ArgSpec::F64Array((0..TERMS).map(|i| i as f64 + 1.0).collect()),
        ArgSpec::F64Array((0..TERMS).map(|i| 1.0 / (i as f64 + 1.0)).collect()),
    ];
    let opts = ExecOptions::default();

    println!("--- scalar ---\n{}", build());
    let scalar_cycles = {
        let mut f = build();
        snslp::core::optimize_o3(&mut f);
        let model = CostModel::default();
        run_with_args(&f, &args, &model, &opts).unwrap().exec.cycles
    };

    for target in [TargetDesc::sse2_like(), TargetDesc::avx2_like()] {
        let model = CostModel::new(target.clone());
        let mut f = build();
        let cfg = SlpConfig::new(SlpMode::SnSlp).with_model(model.clone());
        let report = run_slp(&mut f, &cfg);
        let out = run_with_args(&f, &args, &model, &opts).unwrap();
        println!(
            "--- {} (VF {}): vectorized {} graph(s), {} vs scalar {} cycles ({:.2}x) ---",
            target.name(),
            target.max_lanes(ScalarType::F64),
            report.vectorized_graphs(),
            out.exec.cycles,
            scalar_cycles,
            scalar_cycles as f64 / out.exec.cycles as f64,
        );
        println!("{f}");
        // Expected value: Σ (i+1)·1/(i+1) = 8.
        match &out.arrays[0] {
            snslp::interp::ArrayData::F64(v) => {
                assert!((v[0] - TERMS as f64).abs() < 1e-9, "dot = {}", v[0])
            }
            _ => unreachable!(),
        }
    }
    println!("dot product = {TERMS} (verified on both targets)");
}
