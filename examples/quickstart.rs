//! Quickstart: build scalar IR, vectorize it with Super-Node SLP, and
//! watch it run faster on the reference interpreter.
//!
//! Run with: `cargo run --example quickstart`

use snslp::core::{run_slp, SlpConfig, SlpMode};
use snslp::cost::CostModel;
use snslp::interp::{run_with_args, ArgSpec, ExecOptions};
use snslp::ir::{FunctionBuilder, Param, ScalarType, Type};

fn main() {
    // Scalar code for:  a[2i] = b[2i] - c[2i] + d[2i]
    //                   a[2i+1] = b[2i+1] + d[2i+1] - c[2i+1]
    // — the paper's Figure 3 shape: isomorphic only after reordering
    // both the leaves *and* the trunk of the add/sub chains.
    let mut fb = FunctionBuilder::new(
        "example",
        vec![
            Param::noalias_ptr("a"),
            Param::noalias_ptr("b"),
            Param::noalias_ptr("c"),
            Param::noalias_ptr("d"),
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    let (a, b, c, d) = (
        fb.func().param(0),
        fb.func().param(1),
        fb.func().param(2),
        fb.func().param(3),
    );
    let n = fb.func().param(4);
    fb.counted_loop(n, |fb, i| {
        let two = fb.const_i64(2);
        let eight = fb.const_i64(8);
        let pair = fb.mul(i, two);
        let byte = fb.mul(pair, eight);
        let (pa, pb, pc, pd) = (
            fb.ptradd(a, byte),
            fb.ptradd(b, byte),
            fb.ptradd(c, byte),
            fb.ptradd(d, byte),
        );
        let at = |fb: &mut FunctionBuilder, p, k: i64| {
            let q = fb.ptradd_const(p, 8 * k);
            fb.load(ScalarType::I64, q)
        };
        // Lane 0: b - c + d
        let (b0, c0, d0) = (at(fb, pb, 0), at(fb, pc, 0), at(fb, pd, 0));
        let t0 = fb.sub(b0, c0);
        let r0 = fb.add(t0, d0);
        // Lane 1: b + d - c
        let (b1, d1, c1) = (at(fb, pb, 1), at(fb, pd, 1), at(fb, pc, 1));
        let t1 = fb.add(b1, d1);
        let r1 = fb.sub(t1, c1);
        fb.store(pa, r0);
        let pa1 = fb.ptradd_const(pa, 8);
        fb.store(pa1, r1);
    });
    fb.ret(None);
    let scalar = fb.finish();
    snslp::ir::verify(&scalar).expect("well-formed input");

    println!("--- scalar IR ---\n{scalar}");

    // Vectorize with Super-Node SLP.
    let mut vectorized = scalar.clone();
    let report = run_slp(&mut vectorized, &SlpConfig::new(SlpMode::SnSlp));
    println!("--- SN-SLP report ---");
    println!(
        "graphs attempted: {}, vectorized: {}, Super-Node sizes: {:?}",
        report.graphs.len(),
        report.vectorized_graphs(),
        report
            .graphs
            .iter()
            .flat_map(|g| g.super_node_sizes.iter())
            .collect::<Vec<_>>(),
    );
    println!("\n--- vectorized IR ---\n{vectorized}");

    // Execute both against the same inputs.
    let iters = 512usize;
    let len = 2 * iters;
    let args = vec![
        ArgSpec::I64Array(vec![0; len]),
        ArgSpec::I64Array((0..len as i64).map(|i| 3 * i + 1).collect()),
        ArgSpec::I64Array((0..len as i64).map(|i| i * i % 97).collect()),
        ArgSpec::I64Array((0..len as i64).map(|i| 7 - i).collect()),
        ArgSpec::I64(iters as i64),
    ];
    let model = CostModel::default();
    let opts = ExecOptions::default();
    let s = run_with_args(&scalar, &args, &model, &opts).expect("scalar runs");
    let v = run_with_args(&vectorized, &args, &model, &opts).expect("vectorized runs");
    assert_eq!(s.arrays, v.arrays, "same results");
    println!("--- execution (simulated cycles) ---");
    println!("scalar:     {:>8}", s.exec.cycles);
    println!("vectorized: {:>8}", v.exec.cycles);
    println!(
        "speedup:    {:>8.2}x",
        s.exec.cycles as f64 / v.exec.cycles as f64
    );
}
