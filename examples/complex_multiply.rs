//! The 433.milc-style complex multiply-accumulate kernel — the paper's
//! headline whole-benchmark win — taken through all three vectorizers
//! with per-mode speedups and node statistics.
//!
//! Run with: `cargo run --release --example complex_multiply`

use snslp::core::{run_slp, SlpConfig, SlpMode};
use snslp::cost::CostModel;
use snslp::interp::{run_with_args, ExecOptions};
use snslp::kernels::kernel_by_name;

fn main() {
    let kernel = kernel_by_name("milc_su3").expect("registered kernel");
    println!(
        "kernel: {} ({} — {})",
        kernel.name, kernel.origin, kernel.shape
    );

    let iters = 2048usize;
    let args = kernel.args(iters);
    let model = CostModel::default();
    let opts = ExecOptions::default();

    let mut baseline_cycles = 0u64;
    for mode in [
        None,
        Some(SlpMode::Slp),
        Some(SlpMode::Lslp),
        Some(SlpMode::SnSlp),
    ] {
        let mut f = kernel.build();
        let label = match mode {
            None => "O3",
            Some(m) => m.label(),
        };
        let stats = match mode {
            None => {
                snslp::core::optimize_o3(&mut f);
                String::from("(vectorizers disabled)")
            }
            Some(m) => {
                let report = run_slp(&mut f, &SlpConfig::new(m));
                format!(
                    "vectorized {}/{} graphs, Super-Nodes {:?}",
                    report.vectorized_graphs(),
                    report.graphs.len(),
                    report
                        .graphs
                        .iter()
                        .flat_map(|g| g.super_node_sizes.iter().copied())
                        .collect::<Vec<_>>()
                )
            }
        };
        let out = run_with_args(&f, &args, &model, &opts).expect("kernel runs");
        if mode.is_none() {
            baseline_cycles = out.exec.cycles;
        }
        println!(
            "{label:<7} {:>10} cycles  speedup {:>5.3}x  {stats}",
            out.exec.cycles,
            baseline_cycles as f64 / out.exec.cycles as f64,
        );
    }

    // Show the vectorized inner loop.
    let mut f = kernel.build();
    run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
    println!("\n--- SN-SLP output (inner loop uses f64x2 ops incl. lanewise add/sub) ---");
    println!("{f}");
}
