//! The paper's two motivating examples (§III) exactly as the text walks
//! through them: for each of SLP, LSLP, and SN-SLP, show the SLP-graph
//! cost and whether the vectorizer fires — reproducing the worked numbers
//! (Fig. 2: 0 vs −6; Fig. 3: +4 vs −6).
//!
//! Run with: `cargo run --example motivating_example`

use snslp::core::{build_graph, evaluate, BlockCtx, NodeKind, SlpConfig, SlpMode};
use snslp::kernels::kernel_by_name;

fn main() {
    for (fig, kernel) in [("Figure 2", "motiv_leaf"), ("Figure 3", "motiv_trunk")] {
        let k = kernel_by_name(kernel).expect("registered kernel");
        println!("=== {fig}: {} — {} ===", k.name, k.description);
        for mode in [SlpMode::Slp, SlpMode::Lslp, SlpMode::SnSlp] {
            let mut f = k.build();
            snslp::ir::opt::cleanup_pipeline(&mut f);
            let cfg = SlpConfig::new(mode);
            for b in f.block_ids().collect::<Vec<_>>() {
                let ctx = BlockCtx::compute(&f, b);
                let target = cfg.model.target().clone();
                let seeds = snslp::core::collect_store_seeds(
                    &f,
                    &ctx,
                    |st| target.max_lanes(st),
                    &snslp::ir::FxHashSet::default(),
                );
                for g in seeds {
                    let graph = build_graph(&f, &ctx, &cfg, &g.stores);
                    let cost = evaluate(&f, &ctx, &graph, &cfg.model);
                    println!(
                        "  {:<7} total cost {:+}  => {}",
                        mode.label(),
                        cost.total,
                        if cost.total < 0 {
                            "vectorize"
                        } else {
                            "not profitable, keep scalar"
                        }
                    );
                    for (i, node) in graph.nodes.iter().enumerate() {
                        let kind = match &node.kind {
                            NodeKind::Super(info) => format!(
                                "Super-Node (size {}, {} leaf slots, {} leaf moves, {} trunk-assisted)",
                                info.size(),
                                info.slot_signs.len(),
                                info.leaf_moves,
                                info.trunk_assisted_moves
                            ),
                            NodeKind::Alt { ops } => format!("alternating {ops:?}"),
                            other => format!("{other:?}"),
                        };
                        println!("      node {i}: cost {:+}  {kind}", cost.node_costs[i]);
                    }
                }
            }
        }
        println!();
    }
}
