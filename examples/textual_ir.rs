//! Using the textual IR: write a kernel as `.snir` text, parse it,
//! vectorize it, and print the result — no builder code required.
//!
//! Run with: `cargo run --example textual_ir`

use snslp::core::{run_slp, SlpConfig, SlpMode};
use snslp::ir::parse_function_str;

/// `x[0..2] ← x − α·p + β·q` written by hand (one unrolled pair,
/// straight-line, the 450.soplex update shape).
const SOURCE: &str = r#"
func @soplex_pair(%x: ptr noalias, %p: ptr noalias, %q: ptr noalias,
                  %alpha: f64, %beta: f64) -> void fastmath {
entry:
  %x0 = load f64, %x
  %k8 = const i64 8
  %x1p = ptradd %x, %k8
  %x1 = load f64, %x1p
  %p0 = load f64, %p
  %p1p = ptradd %p, %k8
  %p1 = load f64, %p1p
  %q0 = load f64, %q
  %q1p = ptradd %q, %k8
  %q1 = load f64, %q1p
  ; lane 0: x0 - alpha*p0 + beta*q0
  %ap0 = mul f64 %alpha, %p0
  %bq0 = mul f64 %beta, %q0
  %t0 = sub f64 %x0, %ap0
  %r0 = add f64 %t0, %bq0
  ; lane 1: beta*q1 + x1 - alpha*p1   (scrambled term order)
  %bq1 = mul f64 %beta, %q1
  %ap1 = mul f64 %alpha, %p1
  %t1 = add f64 %bq1, %x1
  %r1 = sub f64 %t1, %ap1
  store %x, %r0
  store %x1p, %r1
  ret
}
"#;

fn main() {
    let mut f = parse_function_str(SOURCE).expect("valid .snir text");
    snslp::ir::verify(&f).expect("well-formed");
    println!("--- parsed ---\n{f}");

    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
    println!(
        "--- SN-SLP: vectorized {} graph(s), cost {:?} ---\n",
        report.vectorized_graphs(),
        report.graphs.iter().map(|g| g.cost).collect::<Vec<_>>()
    );
    println!("{f}");

    // Round-trip: the output prints and reparses.
    let text = f.to_string();
    let reparsed = parse_function_str(&text).expect("output reparses");
    assert_eq!(reparsed.num_linked_insts(), f.num_linked_insts());
    println!("(output round-trips through the parser)");
}
