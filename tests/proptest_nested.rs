//! Property tests composing *both* operator families: random add/sub
//! chains whose leaves are themselves random mul/div chains. This
//! stresses nested Super-Node formation (an additive Super-Node whose
//! slot bundles contain multiplicative Super-Nodes) and the interaction
//! of chain claiming across families.
//!
//! Compiled only with `--features proptest` (and `proptest = "1"` added to
//! `[dev-dependencies]`) so the default workspace builds offline.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use snslp::core::{run_slp, SlpConfig, SlpMode};
use snslp::cost::CostModel;
use snslp::interp::{check_equivalent, ArgSpec};
use snslp::ir::{Function, FunctionBuilder, InstId, Param, ScalarType, Type};

const ARRAY_LEN: usize = 8;

/// A multiplicative term: product/quotient over 1–3 loads.
#[derive(Debug, Clone)]
struct Term {
    divs: Vec<bool>,
    leaves: Vec<(usize, usize)>,
}

/// A lane: additive chain over 2–3 terms with per-position signs.
#[derive(Debug, Clone)]
struct Lane {
    subs: Vec<bool>,
    terms: Vec<Term>,
}

fn term_strategy() -> impl Strategy<Value = Term> {
    (0usize..=2)
        .prop_flat_map(|k| {
            (
                proptest::collection::vec(any::<bool>(), k),
                proptest::collection::vec((0usize..2, 0usize..ARRAY_LEN), k + 1),
            )
        })
        .prop_map(|(divs, leaves)| Term { divs, leaves })
}

fn lane_strategy() -> impl Strategy<Value = Lane> {
    (1usize..=2)
        .prop_flat_map(|k| {
            (
                proptest::collection::vec(any::<bool>(), k),
                proptest::collection::vec(term_strategy(), k + 1),
            )
        })
        .prop_map(|(subs, terms)| Lane { subs, terms })
}

fn build_term(fb: &mut FunctionBuilder, arrays: &[InstId], t: &Term) -> InstId {
    let load = |fb: &mut FunctionBuilder, (arr, idx): (usize, usize)| {
        let p = fb.ptradd_const(arrays[arr], 8 * idx as i64);
        fb.load(ScalarType::F64, p)
    };
    let mut acc = load(fb, t.leaves[0]);
    for (j, &is_div) in t.divs.iter().enumerate() {
        let rhs = load(fb, t.leaves[j + 1]);
        acc = if is_div {
            fb.div(acc, rhs)
        } else {
            fb.mul(acc, rhs)
        };
    }
    acc
}

fn build_kernel(l0: &Lane, l1: &Lane) -> Function {
    let mut fb = FunctionBuilder::new(
        "nested",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("a0"),
            Param::noalias_ptr("a1"),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let out = fb.func().param(0);
    let arrays = [fb.func().param(1), fb.func().param(2)];
    let mut results = Vec::new();
    for lane in [l0, l1] {
        let terms: Vec<InstId> = lane
            .terms
            .iter()
            .map(|t| build_term(&mut fb, &arrays, t))
            .collect();
        let mut acc = terms[0];
        for (j, &is_sub) in lane.subs.iter().enumerate() {
            acc = if is_sub {
                fb.sub(acc, terms[j + 1])
            } else {
                fb.add(acc, terms[j + 1])
            };
        }
        results.push(acc);
    }
    fb.store(out, results[0]);
    let p1 = fb.ptradd_const(out, 8);
    fb.store(p1, results[1]);
    fb.ret(None);
    fb.finish()
}

fn input_strategy() -> impl Strategy<Value = [Vec<f64>; 2]> {
    let arr = proptest::collection::vec(0.5f64..2.0, ARRAY_LEN);
    [arr.clone(), arr].prop_map(|[a, b]| [a, b])
}

fn args_from(data: &[Vec<f64>; 2]) -> Vec<ArgSpec> {
    vec![
        ArgSpec::F64Array(vec![0.0; 2]),
        ArgSpec::F64Array(data[0].clone()),
        ArgSpec::F64Array(data[1].clone()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every mode preserves semantics on nested-family kernels.
    #[test]
    fn nested_families_preserved(
        l0 in lane_strategy(),
        l1 in lane_strategy(),
        data in input_strategy(),
    ) {
        for mode in [SlpMode::Slp, SlpMode::Lslp, SlpMode::SnSlp] {
            let orig = build_kernel(&l0, &l1);
            snslp::ir::verify(&orig).unwrap();
            let mut f = orig.clone();
            run_slp(&mut f, &SlpConfig::new(mode).with_verification());
            check_equivalent(&orig, &f, &args_from(&data), &CostModel::default())
                .map_err(|e| {
                    TestCaseError::fail(format!("[{mode:?}] {e}\norig:\n{orig}\nvec:\n{f}"))
                })?;
        }
    }

    /// SN-SLP's *static* cost estimate is never worse than LSLP's on the
    /// graphs it chooses to vectorize, and whatever it vectorizes stays
    /// semantically intact. (Strict *cycle* dominance is NOT an invariant:
    /// the paper itself notes the static model can mispredict real
    /// execution — §V-A "the cost model's static predictions ... is not
    /// guaranteed to be correct" — and greedy slot choices on nested
    /// mul/div shapes occasionally trade a few cycles.)
    #[test]
    fn nested_families_static_cost_dominance(
        l0 in lane_strategy(),
        l1 in lane_strategy(),
        data in input_strategy(),
    ) {
        let model = CostModel::default();
        let orig = build_kernel(&l0, &l1);
        let mut lslp = orig.clone();
        let l_report = run_slp(&mut lslp, &SlpConfig::new(SlpMode::Lslp));
        let mut sn = orig.clone();
        let s_report = run_slp(&mut sn, &SlpConfig::new(SlpMode::SnSlp));
        // Both stay correct.
        let args = args_from(&data);
        check_equivalent(&orig, &lslp, &args, &model).map_err(TestCaseError::fail)?;
        check_equivalent(&orig, &sn, &args, &model).map_err(TestCaseError::fail)?;
        // SN-SLP never vectorizes *fewer* graphs than LSLP (it falls back
        // to Multi-Node growth when Super-Node chains are incompatible).
        prop_assert!(
            s_report.vectorized_graphs() >= l_report.vectorized_graphs()
                || s_report
                    .graphs
                    .iter()
                    .map(|g| g.cost)
                    .sum::<i32>()
                    <= l_report.graphs.iter().map(|g| g.cost).sum::<i32>(),
            "SN {:?} vs LSLP {:?}\n{orig}",
            s_report,
            l_report
        );
    }
}
