//! Property tests for the *multiplicative* operator family (`mul`/`div`,
//! the reciprocal inverse element of §III-A) and for 4-lane `f32`
//! kernels: random association shapes and sign (exponent) patterns must
//! survive vectorization within floating-point reassociation tolerance.
//!
//! Compiled only with `--features proptest` (and `proptest = "1"` added to
//! `[dev-dependencies]`) so the default workspace builds offline.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use snslp::core::{run_slp, SlpConfig, SlpMode};
use snslp::cost::CostModel;
use snslp::interp::{check_equivalent, ArgSpec};
use snslp::ir::{Function, FunctionBuilder, InstId, Param, ScalarType, Type};

const ARRAY_LEN: usize = 8;
const LANES: usize = 4;

/// One lane: a chain of muls/divs over random `f32` array elements.
#[derive(Debug, Clone)]
struct LaneSpec {
    /// `true` = div at this chain position.
    divs: Vec<bool>,
    /// `k+1` leaves: (input array 0..2, element index).
    leaves: Vec<(usize, usize)>,
    right_assoc: bool,
}

fn lane_strategy() -> impl Strategy<Value = LaneSpec> {
    (2usize..=3)
        .prop_flat_map(|k| {
            (
                proptest::collection::vec(any::<bool>(), k),
                proptest::collection::vec((0usize..2, 0usize..ARRAY_LEN), k + 1),
                any::<bool>(),
            )
        })
        .prop_map(|(divs, leaves, right_assoc)| LaneSpec {
            divs,
            leaves,
            right_assoc,
        })
}

fn build_lane(fb: &mut FunctionBuilder, arrays: &[InstId], spec: &LaneSpec) -> InstId {
    let load = |fb: &mut FunctionBuilder, (arr, idx): (usize, usize)| {
        let p = fb.ptradd_const(arrays[arr], 4 * idx as i64);
        fb.load(ScalarType::F32, p)
    };
    let leaves: Vec<InstId> = spec.leaves.iter().map(|&l| load(fb, l)).collect();
    if spec.right_assoc {
        let mut acc = leaves[spec.leaves.len() - 1];
        for j in (0..spec.divs.len()).rev() {
            acc = if spec.divs[j] {
                fb.div(leaves[j], acc)
            } else {
                fb.mul(leaves[j], acc)
            };
        }
        acc
    } else {
        let mut acc = leaves[0];
        for j in 0..spec.divs.len() {
            acc = if spec.divs[j] {
                fb.div(acc, leaves[j + 1])
            } else {
                fb.mul(acc, leaves[j + 1])
            };
        }
        acc
    }
}

/// Builds a 4-lane straight-line `f32` kernel.
fn build_kernel(specs: &[LaneSpec; LANES]) -> Function {
    let mut fb = FunctionBuilder::new(
        "random_muldiv",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("a0"),
            Param::noalias_ptr("a1"),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let out = fb.func().param(0);
    let arrays = [fb.func().param(1), fb.func().param(2)];
    let results: Vec<InstId> = specs
        .iter()
        .map(|s| build_lane(&mut fb, &arrays, s))
        .collect();
    for (k, r) in results.into_iter().enumerate() {
        let p = fb.ptradd_const(out, 4 * k as i64);
        fb.store(p, r);
    }
    fb.ret(None);
    fb.finish()
}

fn args_from(data: &[Vec<f32>; 2]) -> Vec<ArgSpec> {
    vec![
        ArgSpec::F32Array(vec![0.0; LANES]),
        ArgSpec::F32Array(data[0].clone()),
        ArgSpec::F32Array(data[1].clone()),
    ]
}

fn input_strategy() -> impl Strategy<Value = [Vec<f32>; 2]> {
    // Bounded away from zero so reciprocals stay tame and the relative
    // tolerance of the differential harness applies.
    let arr = proptest::collection::vec(0.5f32..2.0, ARRAY_LEN);
    [arr.clone(), arr].prop_map(|[a, b]| [a, b])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SN-SLP preserves semantics on arbitrary mul/div expression lanes.
    #[test]
    fn snslp_preserves_random_muldiv_kernels(
        s0 in lane_strategy(),
        s1 in lane_strategy(),
        s2 in lane_strategy(),
        s3 in lane_strategy(),
        data in input_strategy(),
    ) {
        let specs = [s0, s1, s2, s3];
        let orig = build_kernel(&specs);
        snslp::ir::verify(&orig).unwrap();
        let mut f = orig.clone();
        run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp).with_verification());
        check_equivalent(&orig, &f, &args_from(&data), &CostModel::default())
            .map_err(|e| TestCaseError::fail(format!("{e}\norig:\n{orig}\nvec:\n{f}")))?;
    }

    /// So do vanilla SLP and LSLP (whatever they choose to vectorize).
    #[test]
    fn slp_lslp_preserve_random_muldiv_kernels(
        s0 in lane_strategy(),
        s1 in lane_strategy(),
        s2 in lane_strategy(),
        s3 in lane_strategy(),
        data in input_strategy(),
    ) {
        let specs = [s0, s1, s2, s3];
        for mode in [SlpMode::Slp, SlpMode::Lslp] {
            let orig = build_kernel(&specs);
            let mut f = orig.clone();
            run_slp(&mut f, &SlpConfig::new(mode).with_verification());
            check_equivalent(&orig, &f, &args_from(&data), &CostModel::default())
                .map_err(|e| TestCaseError::fail(format!("[{mode:?}] {e}")))?;
        }
    }

    /// Leaf-only legality (trunk reordering disabled) is also sound on
    /// the multiplicative family.
    #[test]
    fn leaf_only_muldiv_is_sound(
        s0 in lane_strategy(),
        s1 in lane_strategy(),
        s2 in lane_strategy(),
        s3 in lane_strategy(),
        data in input_strategy(),
    ) {
        let specs = [s0, s1, s2, s3];
        let orig = build_kernel(&specs);
        let mut f = orig.clone();
        let mut cfg = SlpConfig::new(SlpMode::SnSlp).with_verification();
        cfg.enable_trunk_reordering = false;
        run_slp(&mut f, &cfg);
        check_equivalent(&orig, &f, &args_from(&data), &CostModel::default())
            .map_err(TestCaseError::fail)?;
    }
}
