//! Cross-crate integration tests: parse → optimize → vectorize →
//! schedule → interpret, plus the paper's headline behaviours.

use snslp::core::{run_slp, SlpConfig, SlpMode};
use snslp::cost::{CostModel, TargetDesc};
use snslp::interp::{check_equivalent, ArgSpec};
use snslp::ir::parse_function_str;
use snslp::kernels::{kernel_by_name, registry};

#[test]
fn textual_kernel_roundtrip_vectorize_execute() {
    let src = r#"
func @pair(%o: ptr noalias, %b: ptr noalias, %c: ptr noalias) -> void {
entry:
  %k8 = const i64 8
  %b0 = load i64, %b
  %b1p = ptradd %b, %k8
  %b1 = load i64, %b1p
  %c0 = load i64, %c
  %c1p = ptradd %c, %k8
  %c1 = load i64, %c1p
  %r0 = sub i64 %b0, %c0
  %r1 = sub i64 %b1, %c1
  store %o, %r0
  %o1p = ptradd %o, %k8
  store %o1p, %r1
  ret
}
"#;
    let orig = parse_function_str(src).unwrap();
    let mut f = orig.clone();
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::Slp).with_verification());
    assert_eq!(report.vectorized_graphs(), 1, "{f}");
    // The output prints and reparses.
    let f2 = parse_function_str(&f.to_string()).unwrap();
    assert_eq!(f2.num_linked_insts(), f.num_linked_insts());
    // And behaves like the original.
    let args = vec![
        ArgSpec::I64Array(vec![0, 0]),
        ArgSpec::I64Array(vec![100, 250]),
        ArgSpec::I64Array(vec![1, 2]),
    ];
    let (out, _) = check_equivalent(&orig, &f, &args, &CostModel::default()).unwrap();
    assert_eq!(out.arrays[0], snslp::interp::ArrayData::I64(vec![99, 248]));
}

#[test]
fn pass_is_idempotent_after_vectorization() {
    for k in registry() {
        let mut f = k.build();
        let cfg = SlpConfig::new(SlpMode::SnSlp).with_verification();
        let first = run_slp(&mut f, &cfg);
        assert!(first.vectorized_graphs() > 0, "{}", k.name);
        let second = run_slp(&mut f, &cfg);
        assert_eq!(
            second.vectorized_graphs(),
            0,
            "{}: nothing left to vectorize on the second run",
            k.name
        );
    }
}

#[test]
fn avx2_target_vectorizes_f64_kernels_at_width_four() {
    // On a 256-bit target the f32 kernels get VF=8 seeds chunked at
    // their unroll factor (4) and the paired f64 kernels stay at 2;
    // what we check: the pass still works and preserves semantics.
    let model = CostModel::new(TargetDesc::avx2_like());
    for name in ["povray_shade", "sphinx_norm", "motiv_trunk"] {
        let k = kernel_by_name(name).unwrap();
        let orig = k.build();
        let mut f = k.build();
        let cfg = SlpConfig::new(SlpMode::SnSlp)
            .with_model(model.clone())
            .with_verification();
        run_slp(&mut f, &cfg);
        check_equivalent(&orig, &f, &k.args(16), &model).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn no_altop_target_still_correct() {
    // Without native addsub the alternating ops are emulated; the cost
    // model penalizes them more, but whatever vectorizes must stay
    // correct.
    let model = CostModel::new(TargetDesc::no_altop_128());
    for k in registry() {
        let orig = k.build();
        let mut f = k.build();
        let cfg = SlpConfig::new(SlpMode::SnSlp)
            .with_model(model.clone())
            .with_verification();
        run_slp(&mut f, &cfg);
        check_equivalent(&orig, &f, &k.args(8), &model)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    }
}

#[test]
fn threshold_gates_vectorization() {
    let k = kernel_by_name("motiv_trunk").unwrap();
    // An impossible threshold keeps everything scalar.
    let mut f = k.build();
    let mut cfg = SlpConfig::new(SlpMode::SnSlp);
    cfg.threshold = -100;
    let report = run_slp(&mut f, &cfg);
    assert_eq!(report.vectorized_graphs(), 0);
    // The graphs were still analyzed (cost recorded).
    assert!(!report.graphs.is_empty());
    assert!(report.graphs.iter().all(|g| g.cost > -100));
}

#[test]
fn whole_module_compilation() {
    let mut module = snslp::ir::Module::new("suite");
    for k in registry() {
        module.add_function(k.build());
    }
    let reports = snslp::core::run_slp_module(
        &mut module,
        &SlpConfig::new(SlpMode::SnSlp).with_verification(),
    );
    assert_eq!(reports.len(), registry().len());
    assert!(reports.iter().all(|r| r.vectorized_graphs() > 0));
}

#[test]
fn kernel_suite_shape_matches_paper_fig5() {
    // SN-SLP ≥ LSLP ≥ ~O3 on every kernel (simulated cycles); SN-SLP
    // strictly better wherever an inverse operator is involved.
    let model = CostModel::default();
    for k in registry() {
        let orig = k.build();
        let mut lslp = k.build();
        run_slp(&mut lslp, &SlpConfig::new(SlpMode::Lslp));
        let mut sn = k.build();
        run_slp(&mut sn, &SlpConfig::new(SlpMode::SnSlp));
        let args = k.args(32);
        let (o3_out, lslp_out) = check_equivalent(&orig, &lslp, &args, &model).unwrap();
        let (_, sn_out) = check_equivalent(&orig, &sn, &args, &model).unwrap();
        assert!(
            sn_out.exec.cycles <= lslp_out.exec.cycles,
            "{}: SN {} > LSLP {}",
            k.name,
            sn_out.exec.cycles,
            lslp_out.exec.cycles
        );
        assert!(
            lslp_out.exec.cycles <= o3_out.exec.cycles,
            "{}: LSLP {} > O3 {}",
            k.name,
            lslp_out.exec.cycles,
            o3_out.exec.cycles
        );
        if k.name != "namd_energy_sum" {
            assert!(
                sn_out.exec.cycles < o3_out.exec.cycles,
                "{}: SN-SLP must beat O3",
                k.name
            );
        }
    }
}
