//! Ablation tests: each legality relaxation of the Super-Node is
//! load-bearing exactly where the paper says it is.

use snslp::core::{run_slp, SlpConfig, SlpMode};
use snslp::cost::CostModel;
use snslp::interp::check_equivalent;
use snslp::kernels::{kernel_by_name, registry};

fn no_trunk() -> SlpConfig {
    let mut c = SlpConfig::new(SlpMode::SnSlp).with_verification();
    c.enable_trunk_reordering = false;
    c
}

#[test]
fn fig2_needs_only_leaf_moves() {
    // The Fig. 2 kernel vectorizes even with trunk reordering disabled
    // (§III-B: "reordering the leaf nodes").
    let k = kernel_by_name("motiv_leaf").unwrap();
    let mut f = k.build();
    let report = run_slp(&mut f, &no_trunk());
    assert_eq!(report.vectorized_graphs(), 1, "{f}");
}

#[test]
fn fig3_requires_trunk_reordering() {
    // The Fig. 3 kernel does NOT vectorize with leaf-only legality
    // (§III-C: "a simple leaf reordering will break the semantics...
    // Super-Node SLP is able to legally form the groups of vectorizable
    // loads by also reordering the trunk nodes themselves").
    let k = kernel_by_name("motiv_trunk").unwrap();
    let mut f = k.build();
    let report = run_slp(&mut f, &no_trunk());
    assert_eq!(report.vectorized_graphs(), 0, "{f}");

    // With the full algorithm it vectorizes.
    let mut f = k.build();
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp).with_verification());
    assert_eq!(report.vectorized_graphs(), 1);
}

#[test]
fn leaf_only_variant_is_still_sound() {
    // Whatever the restricted variant vectorizes must stay correct.
    let model = CostModel::default();
    for k in registry() {
        let orig = k.build();
        let mut f = k.build();
        run_slp(&mut f, &no_trunk());
        check_equivalent(&orig, &f, &k.args(16), &model)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    }
}

#[test]
fn no_lookahead_variant_is_still_sound() {
    let model = CostModel::default();
    for k in registry() {
        let orig = k.build();
        let mut f = k.build();
        let mut cfg = SlpConfig::new(SlpMode::SnSlp).with_verification();
        cfg.lookahead_depth = 0;
        run_slp(&mut f, &cfg);
        check_equivalent(&orig, &f, &k.args(16), &model)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    }
}

#[test]
fn trunk_assisted_moves_reported_only_when_enabled() {
    let k = kernel_by_name("motiv_trunk").unwrap();
    let mut f = k.build();
    let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
    let trunk_moves: usize = report.graphs.iter().map(|g| g.trunk_assisted_moves).sum();
    assert!(trunk_moves > 0, "Fig. 3 uses trunk moves: {report:?}");

    let mut f = k.build();
    let report = run_slp(&mut f, &no_trunk());
    let trunk_moves: usize = report.graphs.iter().map(|g| g.trunk_assisted_moves).sum();
    assert_eq!(trunk_moves, 0);
}
