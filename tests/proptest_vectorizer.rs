//! Property-based tests: on *randomly generated* add/sub expression
//! programs — random sign patterns, random leaf placements, random
//! association shapes — every vectorizer mode must preserve semantics
//! exactly (integer arithmetic, so equality is bit-exact).
//!
//! This is the mechanized version of the paper's legality argument
//! (§IV-C): APO-respecting leaf and trunk reordering never changes the
//! computed value.
//!
//! Compiled only with `--features proptest` (and `proptest = "1"` added to
//! `[dev-dependencies]`) so the default workspace builds offline.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use snslp::core::{run_slp, SlpConfig, SlpMode};
use snslp::cost::CostModel;
use snslp::interp::{check_equivalent, ArgSpec};
use snslp::ir::{Function, FunctionBuilder, InstId, Param, ScalarType, Type};

const ARRAY_LEN: usize = 8;

/// One SIMD lane of a random kernel: a chain/tree of adds and subs over
/// random array elements.
#[derive(Debug, Clone)]
struct LaneSpec {
    /// One op per internal node: `true` = sub, `false` = add.
    subs: Vec<bool>,
    /// `k+1` leaves: (input array 0..3, element 0..ARRAY_LEN).
    leaves: Vec<(usize, usize)>,
    /// Right-associated instead of the usual left chain (creates nested
    /// right-hand-side subtrees, exercising trunk-sign classes).
    right_assoc: bool,
}

fn lane_strategy() -> impl Strategy<Value = LaneSpec> {
    (2usize..=4)
        .prop_flat_map(|k| {
            (
                proptest::collection::vec(any::<bool>(), k),
                proptest::collection::vec((0usize..3, 0usize..ARRAY_LEN), k + 1),
                any::<bool>(),
            )
        })
        .prop_map(|(subs, leaves, right_assoc)| LaneSpec {
            subs,
            leaves,
            right_assoc,
        })
}

fn build_lane(fb: &mut FunctionBuilder, arrays: &[InstId], spec: &LaneSpec) -> InstId {
    let load = |fb: &mut FunctionBuilder, (arr, idx): (usize, usize)| {
        let p = fb.ptradd_const(arrays[arr], 8 * idx as i64);
        fb.load(ScalarType::I64, p)
    };
    let leaves: Vec<InstId> = spec.leaves.iter().map(|&l| load(fb, l)).collect();
    if spec.right_assoc {
        // leaf0 op0 (leaf1 op1 (leaf2 ...))
        let mut acc = leaves[spec.leaves.len() - 1];
        for j in (0..spec.subs.len()).rev() {
            acc = if spec.subs[j] {
                fb.sub(leaves[j], acc)
            } else {
                fb.add(leaves[j], acc)
            };
        }
        acc
    } else {
        // ((leaf0 op0 leaf1) op1 leaf2) ...
        let mut acc = leaves[0];
        for j in 0..spec.subs.len() {
            acc = if spec.subs[j] {
                fb.sub(acc, leaves[j + 1])
            } else {
                fb.add(acc, leaves[j + 1])
            };
        }
        acc
    }
}

/// Builds a 2-lane straight-line kernel from two lane specs.
fn build_kernel(l0: &LaneSpec, l1: &LaneSpec) -> Function {
    let mut fb = FunctionBuilder::new(
        "random",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("a0"),
            Param::noalias_ptr("a1"),
            Param::noalias_ptr("a2"),
        ],
        Type::Void,
    );
    let out = fb.func().param(0);
    let arrays = [fb.func().param(1), fb.func().param(2), fb.func().param(3)];
    let r0 = build_lane(&mut fb, &arrays, l0);
    let r1 = build_lane(&mut fb, &arrays, l1);
    fb.store(out, r0);
    let p1 = fb.ptradd_const(out, 8);
    fb.store(p1, r1);
    fb.ret(None);
    fb.finish()
}

fn args_from(data: &[Vec<i64>; 3]) -> Vec<ArgSpec> {
    vec![
        ArgSpec::I64Array(vec![0, 0]),
        ArgSpec::I64Array(data[0].clone()),
        ArgSpec::I64Array(data[1].clone()),
        ArgSpec::I64Array(data[2].clone()),
    ]
}

fn input_strategy() -> impl Strategy<Value = [Vec<i64>; 3]> {
    let arr = proptest::collection::vec(-1_000_000i64..1_000_000, ARRAY_LEN);
    [arr.clone(), arr.clone(), arr].prop_map(|[a, b, c]| [a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// SN-SLP preserves semantics on arbitrary add/sub expression pairs.
    #[test]
    fn snslp_preserves_random_addsub_kernels(
        l0 in lane_strategy(),
        l1 in lane_strategy(),
        data in input_strategy(),
    ) {
        let orig = build_kernel(&l0, &l1);
        snslp::ir::verify(&orig).unwrap();
        let mut f = orig.clone();
        run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp).with_verification());
        check_equivalent(&orig, &f, &args_from(&data), &CostModel::default())
            .map_err(|e| TestCaseError::fail(format!("{e}\norig:\n{orig}\nvec:\n{f}")))?;
    }

    /// So do vanilla SLP and LSLP.
    #[test]
    fn slp_and_lslp_preserve_random_addsub_kernels(
        l0 in lane_strategy(),
        l1 in lane_strategy(),
        data in input_strategy(),
    ) {
        for mode in [SlpMode::Slp, SlpMode::Lslp] {
            let orig = build_kernel(&l0, &l1);
            let mut f = orig.clone();
            run_slp(&mut f, &SlpConfig::new(mode).with_verification());
            check_equivalent(&orig, &f, &args_from(&data), &CostModel::default())
                .map_err(|e| TestCaseError::fail(format!("[{mode:?}] {e}")))?;
        }
    }

    /// Whatever SN-SLP vectorizes never executes more simulated cycles
    /// than the LSLP version of the same code (the Fig. 5 dominance).
    #[test]
    fn snslp_never_slower_than_lslp_on_random_kernels(
        l0 in lane_strategy(),
        l1 in lane_strategy(),
        data in input_strategy(),
    ) {
        let model = CostModel::default();
        let orig = build_kernel(&l0, &l1);
        let mut lslp = orig.clone();
        run_slp(&mut lslp, &SlpConfig::new(SlpMode::Lslp));
        let mut sn = orig.clone();
        run_slp(&mut sn, &SlpConfig::new(SlpMode::SnSlp));
        let args = args_from(&data);
        let (_, l_out) = check_equivalent(&orig, &lslp, &args, &model)
            .map_err(TestCaseError::fail)?;
        let (_, s_out) = check_equivalent(&orig, &sn, &args, &model)
            .map_err(TestCaseError::fail)?;
        prop_assert!(
            s_out.exec.cycles <= l_out.exec.cycles,
            "SN {} > LSLP {}\n{orig}",
            s_out.exec.cycles,
            l_out.exec.cycles
        );
    }

    /// The printer/parser round-trips random kernels.
    #[test]
    fn textual_ir_round_trips_random_kernels(
        l0 in lane_strategy(),
        l1 in lane_strategy(),
    ) {
        let f = build_kernel(&l0, &l1);
        let text = f.to_string();
        let f2 = snslp::ir::parse_function_str(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(f2.num_linked_insts(), f.num_linked_insts());
        prop_assert_eq!(f2.to_string(), f2.to_string());
        snslp::ir::verify(&f2).unwrap();
    }

    /// Scalar cleanup (CSE/fold/DCE) is also semantics-preserving.
    #[test]
    fn cleanup_preserves_random_kernels(
        l0 in lane_strategy(),
        l1 in lane_strategy(),
        data in input_strategy(),
    ) {
        let orig = build_kernel(&l0, &l1);
        let mut f = orig.clone();
        snslp::ir::opt::cleanup_pipeline(&mut f);
        snslp::ir::verify(&f).unwrap();
        check_equivalent(&orig, &f, &args_from(&data), &CostModel::default())
            .map_err(TestCaseError::fail)?;
    }
}
